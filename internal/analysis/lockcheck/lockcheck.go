// Package lockcheck enforces the repo's "guarded by mu" convention.
//
// The concurrency core (discovery.Node, election.Runner, simnet.Network,
// the registry and gist directories) keeps mutable state behind a named
// mutex field. A struct field whose doc or line comment contains
// "guarded by <mutex>" declares that every method access to it must
// happen while <mutex> (a sync.Mutex or sync.RWMutex field of the same
// struct) is held. lockcheck verifies the convention intraprocedurally:
//
//   - it tracks Lock/RLock/Unlock/RUnlock calls on the receiver's mutex
//     through straight-line code, if/else, for, switch and select, using
//     a three-valued state (held, unheld, unknown) merged at join points;
//   - methods whose name ends in "Locked" are assumed to be called with
//     the lock held (the convention this codebase already uses for
//     helpers like deliverLocked and directoryLocked);
//   - a `go func` body starts unheld (the launcher's lock does not
//     transfer); a deferred closure starts unknown; other function
//     literals inherit the current state (they run synchronously in the
//     patterns used here, e.g. sort.Slice comparators);
//   - accesses under an unknown state are not flagged — the pass
//     prefers false negatives over false positives.
//
// The pass is intraprocedural: it does not chase calls, so a helper that
// both locks and accesses is checked on its own, and a helper that needs
// the caller's lock must carry the Locked suffix.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"sariadne/internal/analysis"
)

// Analyzer verifies that fields annotated "guarded by <mu>" are only
// accessed while the named mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "check that struct fields annotated `// guarded by mu` are only " +
		"accessed by methods while the named mutex field is held",
	Run: run,
}

var guardRe = regexp.MustCompile(`guarded by (\w+)`)

// structGuards records the lock discipline declared by one struct type.
type structGuards struct {
	mutexes map[string]bool   // mutex-typed field names
	guarded map[string]string // guarded field name → mutex field name
}

type lockState int

const (
	unheld lockState = iota
	held
	unknown
)

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				continue
			}
			recvObj := pass.TypesInfo.Defs[names[0]]
			if recvObj == nil {
				continue
			}
			tn := baseTypeName(recvObj.Type())
			sg, ok := guards[tn]
			if !ok {
				continue
			}
			c := &checker{pass: pass, sg: sg, recv: recvObj}
			st := make(state, len(sg.mutexes))
			entry := unheld
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				entry = held
			}
			for mu := range sg.mutexes {
				st[mu] = entry
			}
			c.stmts(fd.Body.List, st)
		}
	}
	return nil
}

// collectGuards finds struct types with mutex fields and "guarded by"
// annotations, reporting annotations that name a non-mutex field.
func collectGuards(pass *analysis.Pass) map[*types.TypeName]*structGuards {
	out := make(map[*types.TypeName]*structGuards)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			sg := &structGuards{mutexes: map[string]bool{}, guarded: map[string]string{}}
			type pendingGuard struct {
				field *ast.Field
				mu    string
			}
			var pending []pendingGuard
			for _, field := range st.Fields.List {
				if isMutexType(pass.TypesInfo.Types[field.Type].Type) {
					for _, name := range field.Names {
						sg.mutexes[name.Name] = true
					}
					continue
				}
				comment := ""
				if field.Doc != nil {
					comment += field.Doc.Text()
				}
				if field.Comment != nil {
					comment += field.Comment.Text()
				}
				m := guardRe.FindStringSubmatch(comment)
				if m == nil {
					continue
				}
				pending = append(pending, pendingGuard{field, m[1]})
			}
			// Validate after the full scan so annotations may precede
			// their mutex field in the declaration; invalid ones are
			// reported and dropped rather than tracked against a mutex
			// that does not exist.
			for _, p := range pending {
				if !sg.mutexes[p.mu] {
					pass.Reportf(p.field.Pos(),
						"field is annotated `guarded by %s` but %s is not a sync.Mutex or sync.RWMutex field of this struct",
						p.mu, p.mu)
					continue
				}
				for _, name := range p.field.Names {
					sg.guarded[name.Name] = p.mu
				}
			}
			if len(sg.guarded) > 0 {
				out[tn] = sg
			}
			return true
		})
	}
	return out
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func baseTypeName(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// state maps each mutex field name to its tracked lock state.
type state map[string]lockState

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s state) equal(o state) bool {
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	return true
}

// mergeStates joins the states of converging control-flow paths: a mutex
// is held (or unheld) after the join only if every path agrees.
func mergeStates(states []state) state {
	out := states[0].clone()
	for _, s := range states[1:] {
		for k, v := range s {
			if out[k] != v {
				out[k] = unknown
			}
		}
	}
	return out
}

type checker struct {
	pass *analysis.Pass
	sg   *structGuards
	recv types.Object
}

func (c *checker) stmts(list []ast.Stmt, st state) state {
	for _, s := range list {
		st = c.stmt(s, st)
	}
	return st
}

func (c *checker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if mu, op, ok := c.lockOp(s.X); ok {
			st = st.clone()
			st[mu] = op
			return st
		}
		c.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, st)
		}
		for _, e := range s.Lhs {
			c.expr(e, st)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		if _, _, ok := c.lockOp(s.Call); ok {
			// Deferred unlock runs at return; the lock stays held for the
			// rest of the body.
			return st
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure runs in an unknowable lock context.
			c.stmts(lit.Body.List, c.uniform(unknown))
		} else {
			c.expr(s.Call.Fun, st)
		}
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// The launcher's lock does not transfer to the goroutine.
			c.stmts(lit.Body.List, c.uniform(unheld))
		} else {
			c.expr(s.Call.Fun, st)
		}
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st)
		bodyOut := c.stmts(s.Body.List, st.clone())
		var outs []state
		if !terminates(s.Body.List) {
			outs = append(outs, bodyOut)
		}
		if s.Else != nil {
			elseOut := c.stmt(s.Else, st.clone())
			if !stmtTerminates(s.Else) {
				outs = append(outs, elseOut)
			}
		} else {
			outs = append(outs, st)
		}
		if len(outs) == 0 {
			return st // both branches terminate; what follows is unreachable
		}
		return mergeStates(outs)
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st)
		body := s.Body.List
		if s.Post != nil {
			body = append(append([]ast.Stmt(nil), body...), s.Post)
		}
		bodyOut := c.stmts(body, st.clone())
		if bodyOut.equal(st) {
			return st
		}
		return mergeStates([]state{st, bodyOut})
	case *ast.RangeStmt:
		c.expr(s.X, st)
		bodyOut := c.stmts(s.Body.List, st.clone())
		if bodyOut.equal(st) {
			return st
		}
		return mergeStates([]state{st, bodyOut})
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.expr(s.Tag, st)
		return c.caseBodies(s.Body, st, !hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.stmt(s.Assign, st)
		return c.caseBodies(s.Body, st, false)
	case *ast.SelectStmt:
		return c.caseBodies(s.Body, st, false)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, st)
		}
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	}
	return st
}

// caseBodies checks each clause of a switch/select body from the same
// entry state and merges the non-terminating exits. fallthroughEntry adds
// the entry state to the merge (a switch with no default may match no
// case at all).
func (c *checker) caseBodies(body *ast.BlockStmt, st state, fallthroughEntry bool) state {
	var outs []state
	for _, cs := range body.List {
		var list []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				c.expr(e, st)
			}
			list = cs.Body
		case *ast.CommClause:
			entry := st.clone()
			if cs.Comm != nil {
				entry = c.stmt(cs.Comm, entry)
			}
			out := c.stmts(cs.Body, entry)
			if !terminates(cs.Body) {
				outs = append(outs, out)
			}
			continue
		}
		out := c.stmts(list, st.clone())
		if !terminates(list) {
			outs = append(outs, out)
		}
	}
	if fallthroughEntry {
		outs = append(outs, st)
	}
	if len(outs) == 0 {
		return st
	}
	return mergeStates(outs)
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// terminates reports whether a statement list always transfers control
// out of the enclosing flow (return, branch, panic).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		return terminates(s.Body.List) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}

func (c *checker) uniform(v lockState) state {
	st := make(state, len(c.sg.mutexes))
	for mu := range c.sg.mutexes {
		st[mu] = v
	}
	return st
}

// lockOp recognizes recv.<mu>.Lock/RLock/Unlock/RUnlock/TryLock calls and
// returns the mutex field name and the resulting state.
func (c *checker) lockOp(e ast.Expr) (string, lockState, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", unheld, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", unheld, false
	}
	var after lockState
	switch sel.Sel.Name {
	case "Lock", "RLock":
		after = held
	case "Unlock", "RUnlock":
		after = unheld
	case "TryLock", "TryRLock":
		after = unknown
	default:
		return "", unheld, false
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", unheld, false
	}
	id, ok := muSel.X.(*ast.Ident)
	if !ok || c.pass.TypesInfo.Uses[id] != c.recv {
		return "", unheld, false
	}
	if !c.sg.mutexes[muSel.Sel.Name] {
		return "", unheld, false
	}
	return muSel.Sel.Name, after, true
}

// expr walks an expression under the current state, flagging guarded
// field accesses while their mutex is unheld. Function literals are
// checked with the current state: in this codebase they are synchronous
// callbacks (sort comparators and the like); go and defer literals are
// handled by their statements.
func (c *checker) expr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, st.clone())
			return false
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || c.pass.TypesInfo.Uses[id] != c.recv {
				return true
			}
			mu, guarded := c.sg.guarded[n.Sel.Name]
			if guarded && st[mu] == unheld {
				c.pass.Reportf(n.Pos(),
					"access to %s.%s without holding %s (field is guarded by %s)",
					id.Name, n.Sel.Name, mu, mu)
			}
		}
		return true
	})
}
