package detrand_test

import (
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detrand.Analyzer, "a")
}
