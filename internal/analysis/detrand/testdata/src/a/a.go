package a

import "math/rand"

// badGlobal draws from the process-global source: not reproducible.
func badGlobal() int {
	rand.Seed(42)          // want `global math/rand\.Seed`
	x := rand.Intn(10)     // want `global math/rand\.Intn`
	_ = rand.Float64()     // want `global math/rand\.Float64`
	rand.Shuffle(x, swap)  // want `global math/rand\.Shuffle`
	return x
}

func swap(i, j int) {}

// goodInjected threads a seeded source: reproducible.
func goodInjected(rng *rand.Rand) int {
	return rng.Intn(10) + int(rng.Int63n(5))
}

// goodConstruct builds sources; constructors are allowed.
var defaultRNG = rand.New(rand.NewSource(2006))
