package a

import "math/rand"

// Test files are exempt: fuzzing inputs and shuffled fixtures may use the
// global source freely.
func testHelper() int {
	return rand.Intn(100)
}
