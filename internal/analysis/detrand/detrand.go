// Package detrand forbids the global math/rand source in library code.
//
// Simulation results (sdpsim scenarios, workload generation, simnet loss
// and jitter) must be reproducible from a seed. Calls to math/rand's
// top-level functions draw from a process-global source that other code
// can perturb, so any package using them silently loses determinism.
// Library code must thread an injected *rand.Rand instead; _test.go
// files are exempt.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"sariadne/internal/analysis"
)

// Analyzer flags global math/rand top-level function calls in non-test code.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid the global math/rand source in library code; " +
		"inject a seeded *rand.Rand so simulations stay reproducible",
	Run: run,
}

// globalFns are the math/rand package-level functions that consult the
// shared global source. Constructors (New, NewSource, NewZipf) are fine.
var globalFns = map[string]bool{
	"ExpFloat64": true, "Float32": true, "Float64": true,
	"Int": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Intn": true, "NormFloat64": true, "Perm": true,
	"Read": true, "Seed": true, "Shuffle": true,
	"Uint32": true, "Uint64": true, "N": true, "IntN": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if _, isFn := obj.(*types.Func); !isFn || !globalFns[obj.Name()] {
				return true
			}
			// Methods on *rand.Rand share names with the globals; only
			// package-qualified uses (rand.Intn) are the global source.
			if id, ok := sel.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					pass.Reportf(sel.Pos(),
						"call to global %s.%s makes results non-reproducible; inject a seeded *rand.Rand",
						path, obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
