// Package analysis is a self-contained, stdlib-only re-implementation of
// the subset of golang.org/x/tools/go/analysis that sdplint needs. The
// container this repo grows in has no module proxy access, so vendoring
// x/tools is not an option; the API below mirrors the upstream shape
// (Analyzer, Pass, Diagnostic) closely enough that the analyzers could be
// ported to the real framework by changing one import line.
//
// Differences from x/tools kept deliberate and small:
//   - no Requires/ResultOf fact plumbing (our passes are independent),
//   - no SuggestedFixes,
//   - suppression is built in: a "//sdplint:ignore <analyzer> <reason>"
//     comment on the diagnostic's line or the line above it silences the
//     finding (the reason is mandatory so suppressions stay auditable).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the pass in diagnostics and ignore comments.
	Name string
	// Doc is a one-paragraph description shown by `sdplint -help`.
	Doc string
	// Run applies the pass to one package.
	Run func(*Pass) error
}

// Pass is the input to one Analyzer.Run invocation: a type-checked
// package plus a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

var ignoreRe = regexp.MustCompile(`^//\s*sdplint:ignore\s+([\w,]+)\s+\S`)

// ignoredLines collects, per file line, the analyzer names silenced by an
// sdplint:ignore comment on that line. An ignore comment suppresses
// findings on its own line and on the line directly below (so it can sit
// above the flagged statement).
func ignoredLines(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					out[pos.Filename] = byLine
				}
				names := strings.Split(m[1], ",")
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	return out
}

// Run applies one analyzer to a package and returns its diagnostics,
// sorted by position, with sdplint:ignore suppressions already applied.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	ignored := ignoredLines(fset, files)
	var kept []Diagnostic
	for _, d := range pass.diags {
		pos := fset.Position(d.Pos)
		if names, ok := ignored[pos.Filename][pos.Line]; ok {
			suppressed := false
			for _, n := range names {
				if n == a.Name || n == "all" {
					suppressed = true
					break
				}
			}
			if suppressed {
				continue
			}
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
