// Package analysistest runs an analyzer over a testdata tree and checks
// its diagnostics against expectations written in the source, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are comments of the form
//
//	code // want "regexp"
//
// Every diagnostic must be matched by a want on the same line, and every
// want must be matched by a diagnostic whose message matches the regexp.
// Lines may carry several quoted patterns when several diagnostics land
// on one line. Go tooling skips directories named "testdata", so the
// trees may contain deliberately buggy code (and even _test.go files)
// without breaking `go build ./...`.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sariadne/internal/analysis"
	"sariadne/internal/analysis/load"
)

// TestData returns the canonical testdata root used by analyzer tests.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
var patRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg>, applies the analyzer, and reports any
// mismatch between its diagnostics and the // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	runWith(t, load.NewLoader("", nil), testdata, a, pkg)
}

// RunWithModule is Run for testdata that imports module-local packages:
// moduleFiles maps each import path the testdata uses to the absolute
// paths of its non-test sources, exactly as load.NewLoader expects.
func RunWithModule(t *testing.T, testdata string, a *analysis.Analyzer, pkg, modulePath string, moduleFiles map[string][]string) {
	t.Helper()
	runWith(t, load.NewLoader(modulePath, moduleFiles), testdata, a, pkg)
}

func runWith(t *testing.T, loader *load.Loader, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	units, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(units) == 0 {
		t.Fatalf("no Go packages in %s", dir)
	}

	wants := make(map[string]map[int][]*want) // file → line → expectations
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := loader.Fset.Position(c.Pos())
					for _, q := range patRe.FindAllString(m[1], -1) {
						pat := q[1 : len(q)-1]
						if q[0] == '"' {
							pat = strings.ReplaceAll(pat, `\"`, `"`)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						byLine := wants[pos.Filename]
						if byLine == nil {
							byLine = make(map[int][]*want)
							wants[pos.Filename] = byLine
						}
						byLine[pos.Line] = append(byLine[pos.Line], &want{re: re})
					}
				}
			}
		}
	}

	for _, u := range units {
		diags, err := analysis.Run(a, loader.Fset, u.Files, u.Pkg, u.Info)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, u.Path, err)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			if !claim(wants, pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
	}

	for file, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.re)
				}
			}
		}
	}
}

func claim(wants map[string]map[int][]*want, pos token.Position, msg string) bool {
	for _, w := range wants[pos.Filename][pos.Line] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
