// Package sleeptest flags time.Sleep-based synchronization in tests.
//
// A sleep in a test encodes a guess about scheduling latency: too short
// and the test flakes under load (the race detector slows everything by
// 5-10x), too long and the suite crawls. Tests should poll for the
// condition they are actually waiting for — this repo provides
// testutil.WaitFor(t, timeout, cond) for exactly that. Sleeps whose
// purpose really is the passage of time (e.g. exercising simnet latency)
// can be suppressed with an explanatory sdplint:ignore comment.
package sleeptest

import (
	"go/ast"
	"go/types"
	"strings"

	"sariadne/internal/analysis"
)

// Analyzer flags time.Sleep calls in _test.go files.
var Analyzer = &analysis.Analyzer{
	Name: "sleeptest",
	Doc: "flag time.Sleep-based synchronization in _test.go files; " +
		"poll with testutil.WaitFor instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.Sleep in test synchronizes by guessing at latency; poll the condition with testutil.WaitFor")
			return true
		})
	}
	return nil
}
