package a

import "time"

// Library code may sleep (backoff, pacing); only tests are checked.
func pace() {
	time.Sleep(10 * time.Millisecond)
}
