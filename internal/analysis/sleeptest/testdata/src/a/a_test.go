package a

import "time"

func testWait() {
	time.Sleep(50 * time.Millisecond) // want `time\.Sleep in test`

	for i := 0; i < 10; i++ {
		time.Sleep(2 * time.Millisecond) // want `time\.Sleep in test`
	}

	// A sleep that really models the passage of time can be suppressed
	// with a justification.
	//sdplint:ignore sleeptest exercising simnet latency, not synchronizing
	time.Sleep(time.Millisecond)
}
