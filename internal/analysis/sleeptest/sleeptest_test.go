package sleeptest_test

import (
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/sleeptest"
)

func TestSleeptest(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), sleeptest.Analyzer, "a")
}
