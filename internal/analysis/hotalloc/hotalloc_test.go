package hotalloc_test

import (
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotalloc.Analyzer, "a")
}
