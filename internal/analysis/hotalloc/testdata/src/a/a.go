package a

import "fmt"

var global int

type table struct {
	names map[string]int
	codes []int
}

// distance is the shape of the real encoded-match hot path: index
// lookups, integer comparisons, no allocation — nothing to flag.
//
//sdp:hotpath
func distance(t *table, a, b string) (int, bool) {
	ai, ok := t.names[a]
	if !ok {
		return 0, false
	}
	bi, ok := t.names[b]
	if !ok {
		return 0, false
	}
	if ai == bi {
		return 0, true
	}
	return t.codes[ai] - t.codes[bi], true
}

// cold is unannotated: it may allocate freely.
func cold() []int {
	out := make([]int, 8)
	out = append(out, 1)
	return out
}

//sdp:hotpath
func allocators(n int) {
	_ = make([]int, n)    // want `calls make, which allocates`
	_ = new(table)        // want `calls new, which allocates`
	var s []int
	s = append(s, 1) // want `calls append, which may grow the backing array`
	_ = s
}

//sdp:hotpath
func literals() {
	_ = []int{1, 2}            // want `builds a slice literal, which allocates`
	_ = map[string]int{"a": 1} // want `builds a map literal, which allocates`
	_ = &table{}               // want `takes the address of a composite literal`
	v := table{}               // stack struct literal: fine
	_ = v
}

//sdp:hotpath
func strconcat(a, b string) string {
	c := a + b // want `concatenates strings, which allocates`
	c += a     // want `concatenates strings, which allocates`
	return c
}

//sdp:hotpath
func conversions(s string, b []byte) {
	_ = []byte(s) // want `converts string to \[\]byte, which copies and allocates`
	_ = string(b) // want `converts \[\]byte to string, which copies and allocates`
	_ = int64(len(s)) // numeric conversion: fine
}

//sdp:hotpath
func closures(xs []int) int {
	total := 0
	f := func() { // want `creates a closure capturing total, which allocates`
		total++
	}
	f()
	g := func(a, b int) int { return a + b } // no capture: fine
	h := func() int { return global }        // package-level var: no cell
	return g(total, h())
}

//sdp:hotpath
func boxing(n int, p *table) {
	fmt.Println(n)  // want `boxes int into any, which allocates`
	fmt.Println(p)  // pointer-shaped: no box allocation
	var i interface{ m() }
	_ = i
	var any1 any = n // want `boxes int into any, which allocates`
	_ = any1
	var any2 any = p // fine
	_ = any2
}

//sdp:hotpath
func boxedReturn(n int) any {
	return n // want `boxes int into any, which allocates`
}

//sdp:hotpath
func spawns() {
	go cold() // want `starts a goroutine`
}

//sdp:hotpath
func suppressed(dst []int) []int {
	// The caller guarantees cap(dst) >= needed; growth cannot happen.
	//sdplint:ignore hotalloc capacity preallocated by caller
	dst = append(dst, 1)
	return dst
}
