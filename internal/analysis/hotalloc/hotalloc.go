// Package hotalloc keeps the query hot path allocation-free. A function
// annotated
//
//	//sdp:hotpath
//
// on its doc comment runs on the paper's match fast path — encoded-match
// distance computations, Bloom membership tests, the registry's snapshot
// walk — where a single heap allocation per call multiplies into GC
// pressure at directory query rates. hotalloc flags every construct in an
// annotated function's body that allocates (or may allocate) on the heap:
//
//   - make(...) and new(...),
//   - append(...) — growth of the backing array cannot be ruled out
//     statically; appends into caller-preallocated capacity carry an
//     //sdplint:ignore hotalloc comment stating the capacity invariant,
//   - slice, map and pointer-to-struct composite literals,
//   - string concatenation (+ / += on strings),
//   - string ↔ []byte / []rune conversions,
//   - function literals that capture enclosing variables (the closure
//     cell is heap-allocated),
//   - implicit interface boxing: passing, assigning or returning a
//     concrete non-pointer-shaped value where an interface is expected
//     (fmt.Sprintf("%d", n) is the classic offender).
//
// The pass is syntactic plus type info — it does not run escape analysis,
// so it over-approximates: a flagged construct the compiler provably
// keeps on the stack may be suppressed with an audited ignore comment.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sariadne/internal/analysis"
)

// Analyzer flags heap allocations inside //sdp:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "check that functions annotated //sdp:hotpath do not allocate: no " +
		"make/new/append/composite literals, string concatenation, capturing " +
		"closures or interface boxing",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd.Doc) {
				continue
			}
			c := &checker{pass: pass, results: resultTypes(pass, fd)}
			c.block(fd.Body)
		}
	}
	return nil
}

func isHotpath(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "sdp:hotpath" {
			return true
		}
	}
	return false
}

// resultTypes records the declared result types so returns can be checked
// for interface boxing.
func resultTypes(pass *analysis.Pass, fd *ast.FuncDecl) []types.Type {
	var out []types.Type
	if fd.Type.Results == nil {
		return nil
	}
	for _, field := range fd.Type.Results.List {
		t := pass.TypesInfo.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

type checker struct {
	pass    *analysis.Pass
	results []types.Type
}

func (c *checker) block(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.pass.Reportf(n.Pos(), "hotpath function takes the address of a composite literal, which escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.pass.TypesInfo.Types[n.X].Type) {
				c.pass.Reportf(n.Pos(), "hotpath function concatenates strings, which allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(c.pass.TypesInfo.Types[n.Lhs[0]].Type) {
				c.pass.Reportf(n.Pos(), "hotpath function concatenates strings, which allocates")
			}
			c.assign(n)
		case *ast.GenDecl:
			c.decl(n)
		case *ast.FuncLit:
			c.funcLit(n)
		case *ast.ReturnStmt:
			c.ret(n)
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "hotpath function starts a goroutine, which allocates a stack")
		}
		return true
	})
}

// call checks builtin allocators, allocating conversions and interface
// boxing of arguments.
func (c *checker) call(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := c.pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				c.pass.Reportf(call.Pos(), "hotpath function calls make, which allocates")
			case "new":
				c.pass.Reportf(call.Pos(), "hotpath function calls new, which allocates")
			case "append":
				c.pass.Reportf(call.Pos(), "hotpath function calls append, which may grow the backing array")
			}
			return
		}
	}
	// Type conversion?
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := c.pass.TypesInfo.Types[call.Args[0]].Type
		if src != nil && allocatingConversion(src, dst) {
			c.pass.Reportf(call.Pos(), "hotpath function converts %s to %s, which copies and allocates", src, dst)
		}
		return
	}
	// Interface boxing of arguments.
	sig, ok := funcSignature(c.pass, call)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			slice, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.boxed(arg, pt)
	}
}

// assign checks interface boxing on assignments.
func (c *checker) assign(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		lt := c.pass.TypesInfo.Types[a.Lhs[i]].Type
		if lt == nil && a.Tok == token.DEFINE {
			if id, ok := a.Lhs[i].(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		c.boxed(a.Rhs[i], lt)
	}
}

// decl checks interface boxing in var declarations.
func (c *checker) decl(gd *ast.GenDecl) {
	if gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		for i, v := range vs.Values {
			if i < len(vs.Names) {
				if obj := c.pass.TypesInfo.Defs[vs.Names[i]]; obj != nil {
					c.boxed(v, obj.Type())
				}
			}
		}
	}
}

// ret checks interface boxing of return values.
func (c *checker) ret(r *ast.ReturnStmt) {
	if len(r.Results) != len(c.results) {
		return
	}
	for i, e := range r.Results {
		c.boxed(e, c.results[i])
	}
}

// funcLit flags closures that capture enclosing variables.
func (c *checker) funcLit(lit *ast.FuncLit) {
	captured := false
	var capturedName string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Package-level vars do not force a closure cell; locals declared
		// outside the literal do.
		if obj.Parent() == c.pass.Pkg.Scope() {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			captured = true
			capturedName = id.Name
		}
		return true
	})
	if captured {
		c.pass.Reportf(lit.Pos(), "hotpath function creates a closure capturing %s, which allocates", capturedName)
	}
}

// composite flags slice and map literals (always heap-backed storage) —
// plain struct literals stay on the stack and pass.
func (c *checker) composite(lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "hotpath function builds a slice literal, which allocates")
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "hotpath function builds a map literal, which allocates")
	}
}

// boxed reports when expr (a concrete, non-pointer-shaped value) is
// converted to an interface-typed destination.
func (c *checker) boxed(expr ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if src == types.Typ[types.UntypedNil] {
		return
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return // interface-to-interface: no box
	}
	if pointerShaped(src) {
		return // the value fits the interface data word
	}
	c.pass.Reportf(expr.Pos(), "hotpath function boxes %s into %s, which allocates", src, dst)
}

// pointerShaped reports whether values of t fit an interface's data word
// without a heap copy.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// allocatingConversion reports string ↔ []byte/[]rune conversions.
func allocatingConversion(src, dst types.Type) bool {
	return (isString(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isString(dst))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// funcSignature resolves the called function's signature, when the callee
// is an ordinary function or method (not a builtin or conversion).
func funcSignature(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}
