// Package a is protocol-layer code that must not reach past the
// transport boundary.
package a

import (
	"sariadne/internal/simnet" // want `direct import of sariadne/internal/simnet outside the transport boundary`
)

// ID leaks the simulator's address type into protocol code.
type ID = simnet.NodeID
