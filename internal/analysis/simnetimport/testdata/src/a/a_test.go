package a

import (
	"testing"

	"sariadne/internal/simnet"
)

// Tests may build simulated networks as fixtures; no diagnostic here.
func TestFixture(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
}
