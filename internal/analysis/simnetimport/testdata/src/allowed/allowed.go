// Package sariadne mimics the root facade, which is allowlisted: it
// exists to construct simulated networks. No diagnostics in this file.
package sariadne

import (
	"sariadne/internal/simnet"
)

// NewSimulation builds a simulator the facade way.
func NewSimulation() *simnet.Network {
	return simnet.New(simnet.Config{})
}
