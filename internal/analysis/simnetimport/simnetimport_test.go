package simnetimport_test

import (
	"path/filepath"
	"strings"
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/simnetimport"
)

// pkgFiles resolves a real module package's non-test sources so the
// testdata can import it the way production code does.
func pkgFiles(t *testing.T, elems ...string) []string {
	t.Helper()
	pattern := filepath.Join(append([]string{"..", ".."}, append(elems, "*.go")...)...)
	matches, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		abs, err := filepath.Abs(m)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, abs)
	}
	if len(files) == 0 {
		t.Fatalf("no sources matched %s", pattern)
	}
	return files
}

func moduleFiles(t *testing.T) map[string][]string {
	t.Helper()
	return map[string][]string{
		"sariadne/internal/simnet":    pkgFiles(t, "simnet"),
		"sariadne/internal/telemetry": pkgFiles(t, "telemetry"),
	}
}

// TestSimnetImportFlagged: a protocol-layer package importing simnet is
// diagnosed, but its _test.go files are exempt.
func TestSimnetImportFlagged(t *testing.T) {
	analysistest.RunWithModule(t, analysistest.TestData(t), simnetimport.Analyzer, "a",
		"sariadne", moduleFiles(t))
}

// TestAllowlistedPackageClean: the root facade package (path "sariadne")
// imports simnet with no diagnostics.
func TestAllowlistedPackageClean(t *testing.T) {
	analysistest.RunWithModule(t, analysistest.TestData(t), simnetimport.Analyzer, "allowed",
		"sariadne", moduleFiles(t))
}
