// Package simnetimport keeps the transport abstraction from eroding.
//
// PR 4 moved the discovery and election layers off the in-memory
// simulator and onto internal/transport, whose Transport interface the
// same protocol code speaks over simnet, UDP and TCP alike. That
// boundary only holds if protocol and tool code cannot quietly reach
// back into internal/simnet; one direct import would re-couple the
// protocol to the simulator and silently exclude it from real
// federation. This analyzer forbids importing sariadne/internal/simnet
// outside an explicit allowlist:
//
//   - sariadne (the root facade builds simulated networks by design)
//   - sariadne/internal/simnet itself
//   - sariadne/internal/transport (the adapter is the boundary)
//   - sariadne/cmd/sdpsim, sariadne/cmd/benchfig and sariadne/cmd/sdpload
//     (simulation and load-generation tools)
//
// The allowlist extends the issue's minimum (transport, simnet, sdpsim)
// with the root facade and benchfig, which exist to construct
// simulations and cannot do so through the transport interface alone.
// _test.go files are exempt everywhere: tests legitimately build simnet
// networks as fixtures.
package simnetimport

import (
	"strconv"
	"strings"

	"sariadne/internal/analysis"
)

// simnetPath is the guarded import path.
const simnetPath = "sariadne/internal/simnet"

// allowed lists the package paths that may import simnet directly.
var allowed = map[string]bool{
	"sariadne":                    true,
	"sariadne/internal/simnet":    true,
	"sariadne/internal/transport": true,
	"sariadne/cmd/sdpsim":         true,
	"sariadne/cmd/benchfig":       true,
	"sariadne/cmd/sdpload":        true,
}

// Analyzer flags direct internal/simnet imports outside the transport
// boundary.
var Analyzer = &analysis.Analyzer{
	Name: "simnetimport",
	Doc: "forbid direct internal/simnet imports outside the transport boundary; " +
		"protocol code speaks transport.Transport so it runs over real sockets too",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if allowed[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != simnetPath {
				continue
			}
			pass.Reportf(imp.Pos(),
				"direct import of %s outside the transport boundary; speak sariadne/internal/transport instead",
				simnetPath)
		}
	}
	return nil
}
