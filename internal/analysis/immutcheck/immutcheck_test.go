package immutcheck_test

import (
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/immutcheck"
)

func TestImmutcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), immutcheck.Analyzer, "a")
}
