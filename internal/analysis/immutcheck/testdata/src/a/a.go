package a

// snapshot is published by atomic pointer swap; writers must
// copy-on-write.
//
//sdp:immutable
type snapshot struct {
	entries []string
	index   map[string]int
	count   int
	inner   inner
}

type inner struct {
	n int
}

// mutable has no annotation: writes anywhere are fine.
type mutable struct {
	count int
}

// newSnapshot is a constructor: writes are the point.
func newSnapshot(entries []string) *snapshot {
	s := &snapshot{index: make(map[string]int)}
	s.entries = entries
	for i, e := range entries {
		s.index[e] = i
	}
	s.count = len(entries)
	s.inner.n = 1
	return s
}

// cloneSnapshot may write: it builds the next version.
func cloneSnapshot(old *snapshot) *snapshot {
	s := &snapshot{}
	s.entries = append([]string(nil), old.entries...)
	s.count = old.count
	return s
}

// makeIndex is construction too.
func makeIndex(s *snapshot) {
	s.index = map[string]int{}
}

func mutateDirect(s *snapshot) {
	s.count = 7 // want `write to field count of //sdp:immutable type snapshot outside a construction`
}

func mutateCompound(s *snapshot) {
	s.count += 1 // want `write to field count of //sdp:immutable type snapshot`
	s.count++    // want `write to field count of //sdp:immutable type snapshot`
}

func mutateThroughSlice(s *snapshot) {
	s.entries[0] = "x" // want `write to field entries of //sdp:immutable type snapshot`
}

func mutateThroughMap(s *snapshot) {
	s.index["k"] = 1 // want `write to field index of //sdp:immutable type snapshot`
	delete(s.index, "k") // want `write to field index of //sdp:immutable type snapshot`
}

func mutateNested(s *snapshot) {
	s.inner.n = 2 // want `write to field inner of //sdp:immutable type snapshot`
}

func mutateOK(m *mutable) {
	m.count = 1 // no finding: mutable is not annotated
}

func readOK(s *snapshot) int {
	local := s.count // reads are always fine
	return local + len(s.entries)
}

func suppressed(s *snapshot) {
	//sdplint:ignore immutcheck test fixture resets between publications
	s.count = 0
}
