//go:build !some_disabled_tag

// Package-clause build tags must not confuse annotation detection: the
// annotations below still attach to their declarations.
package a

// The group annotation covers every type in the parenthesized block.
//
//sdp:immutable
type (
	grouped1 struct {
		a int
	}
	grouped2 struct {
		b int
	}
)

// trailing is annotated by a line comment on the spec itself.
type trailing struct{ c int } //sdp:immutable

// host embeds an immutable struct; writes to promoted fields are writes
// to the immutable type's fields.
type host struct {
	grouped1
	own int
}

func newGrouped() *grouped1 {
	g := &grouped1{}
	g.a = 1
	return g
}

func mutateGrouped1(g *grouped1) {
	g.a = 2 // want `write to field a of //sdp:immutable type grouped1`
}

func mutateGrouped2(g *grouped2) {
	g.b = 2 // want `write to field b of //sdp:immutable type grouped2`
}

func mutateTrailing(t *trailing) {
	t.c = 3 // want `write to field c of //sdp:immutable type trailing`
}

func mutatePromoted(h *host) {
	h.a = 4 // want `write to field a of //sdp:immutable type`
	h.own = 5
}

func mutateEmbedded(h *host) {
	h.grouped1.a = 6 // want `write to field a of //sdp:immutable type grouped1`
}
