// Package immutcheck enforces the snapshot-publish discipline behind the
// lock-free read path: a type annotated
//
//	//sdp:immutable
//
// on its declaration is published by atomic pointer swap and read
// concurrently without locks, so after construction it must never be
// mutated — writers build a fresh value (copy-on-write) and swap the
// pointer. immutcheck turns violations of that convention into build-time
// findings instead of race-detector roulette.
//
// The contract it checks: fields of an annotated type may only be written
// inside construction functions — functions (or methods) whose name
// starts with "new", "make" or "clone", case-insensitively. Everything
// else is a finding:
//
//   - direct field stores (s.f = v, s.f += v, s.f++),
//   - writes through a field (s.slice[i] = v, s.m[k] = v, delete(s.m, k),
//     s.inner.g = v),
//   - writes to promoted fields reached through an embedded immutable
//     struct.
//
// The annotation may sit on the type's own doc comment or on the doc of a
// grouped `type (...)` declaration, in which case it covers every type in
// the group.
package immutcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"sariadne/internal/analysis"
)

// Analyzer verifies that //sdp:immutable types are only written inside
// constructor/clone functions.
var Analyzer = &analysis.Analyzer{
	Name: "immutcheck",
	Doc: "check that types annotated //sdp:immutable are only written inside " +
		"construction functions (new*/make*/clone*), so atomically published " +
		"snapshots stay copy-on-write",
	Run: run,
}

// allowedPrefixes are the construction-function name prefixes permitted to
// write immutable state.
var allowedPrefixes = []string{"new", "make", "clone"}

func run(pass *analysis.Pass) error {
	immutTypes, immutFields := collect(pass)
	if len(immutTypes) == 0 {
		return nil
	}
	c := &checker{pass: pass, types: immutTypes, fields: immutFields}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || constructorName(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						c.checkWrite(lhs)
					}
				case *ast.IncDecStmt:
					c.checkWrite(n.X)
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
						if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
							c.checkWrite(n.Args[0])
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// constructorName reports whether a function name belongs to the allowed
// construction set.
func constructorName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range allowedPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// collect finds //sdp:immutable annotations and returns the annotated
// type names plus the set of their declared field objects (for promoted
// access through embedding).
func collect(pass *analysis.Pass) (map[*types.TypeName]bool, map[types.Object]string) {
	immutTypes := make(map[*types.TypeName]bool)
	immutFields := make(map[types.Object]string)
	mark := func(ts *ast.TypeSpec) {
		tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if !ok {
			return
		}
		immutTypes[tn] = true
		// Every declared field, embedded ones included, so writes to
		// promoted fields through an embedding chain resolve here too.
		if s, ok := tn.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < s.NumFields(); i++ {
				immutFields[s.Field(i)] = tn.Name()
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			groupAnnotated := hasAnnotation(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if groupAnnotated || hasAnnotation(ts.Doc) || hasAnnotation(ts.Comment) {
					mark(ts)
				}
			}
		}
	}
	return immutTypes, immutFields
}

func hasAnnotation(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "sdp:immutable" {
			return true
		}
	}
	return false
}

type checker struct {
	pass   *analysis.Pass
	types  map[*types.TypeName]bool
	fields map[types.Object]string
}

// checkWrite peels the written expression down its selector/index chain
// and reports when the store lands in (or goes through) a field of an
// immutable type.
func (c *checker) checkWrite(e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := c.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				owner := baseNamed(c.pass.TypesInfo.Types[x.X].Type)
				typeName, immutable := c.fields[sel.Obj()]
				if !immutable && owner != nil && c.types[owner.Obj()] {
					typeName, immutable = owner.Obj().Name(), true
				}
				if immutable {
					c.pass.Reportf(x.Pos(),
						"write to field %s of //sdp:immutable type %s outside a construction "+
							"function (allowed: new*/make*/clone*); copy-on-write and republish instead",
						sel.Obj().Name(), typeName)
					return
				}
			}
			e = x.X
		default:
			return
		}
	}
}

// baseNamed returns the named type behind pointers, or nil.
func baseNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
