// Package atomicmix enforces the repo's all-or-nothing atomics
// discipline, the load-bearing invariant under the lock-free snapshot
// read path: a word that is ever accessed with sync/atomic must be
// accessed with sync/atomic everywhere.
//
// Two rules, checked per package:
//
//  1. A struct field whose address is ever passed to a sync/atomic
//     function (atomic.LoadUint64(&s.n), atomic.AddInt64(&s.n, 1), ...)
//     may not also be read or written with plain loads and stores. Mixed
//     access is exactly the bug the race detector only catches when the
//     interleaving happens; this pass catches it on every build.
//
//  2. A struct field of a sync/atomic type (atomic.Pointer[T],
//     atomic.Value, atomic.Uint64, atomic.Bool, ...) may only be used as
//     the receiver of a method call (.Load(), .Store(), .Swap(), ...).
//     Any other use — copying the value, comparing it, taking its
//     address to pass around — bypasses the atomic API and reads the
//     published state with a plain load.
//
// The fix for a rule-1 finding is almost always to migrate the field to
// the typed atomics of rule 2, which make plain access unrepresentable.
package atomicmix

import (
	"go/ast"
	"go/types"

	"sariadne/internal/analysis"
)

// Analyzer flags mixed atomic/plain access to the same field and plain
// uses of sync/atomic-typed fields.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "check that fields accessed via sync/atomic are never also accessed " +
		"with plain loads/stores, and that atomic-typed fields are only used " +
		"through their methods",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// First sweep: find every &x.f argument to a sync/atomic call. The
	// fields collected here are the "atomic words" of rule 1; the selector
	// nodes are remembered so the second sweep does not flag the atomic
	// accesses themselves.
	atomicFields := make(map[types.Object][]ast.Node) // field → atomic-use sites
	atomicUseNodes := make(map[*ast.SelectorExpr]bool)
	// methodRecv marks selectors of atomic-typed fields that appear as a
	// method-call receiver (x.f.Load()): the only sanctioned use in rule 2.
	methodRecv := make(map[*ast.SelectorExpr]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fun, ok := call.Fun.(*ast.SelectorExpr); ok {
				if recv, ok := fun.X.(*ast.SelectorExpr); ok && isAtomicType(pass.TypesInfo.Types[recv].Type) {
					methodRecv[recv] = true
				}
			}
			if !isAtomicPkgCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := fieldObject(pass, sel)
				if obj == nil {
					continue
				}
				atomicFields[obj] = append(atomicFields[obj], sel)
				atomicUseNodes[sel] = true
			}
			return true
		})
	}

	// Second sweep: every other selector access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil {
				return true
			}
			if isAtomicType(obj.Type()) {
				if !methodRecv[sel] {
					pass.Reportf(sel.Pos(),
						"field %s has atomic type %s but is used outside a method call; "+
							"go through Load/Store/Swap so the access stays atomic",
						obj.Name(), obj.Type())
				}
				return true
			}
			if _, mixed := atomicFields[obj]; mixed && !atomicUseNodes[sel] {
				pass.Reportf(sel.Pos(),
					"plain access to field %s, which is also accessed with sync/atomic; "+
						"either use atomic ops everywhere or migrate the field to an atomic type",
					obj.Name())
			}
			return true
		})
	}
	return nil
}

// fieldObject resolves sel to the struct field it selects, or nil when
// sel is not a field selection (package-qualified names, methods, ...).
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// isAtomicPkgCall reports whether the call's callee is a function of the
// sync/atomic package (LoadUint64, AddInt64, StorePointer, ...).
func isAtomicPkgCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// isAtomicType reports whether t is a named type of sync/atomic
// (including instantiated generics like atomic.Pointer[T]).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
