package a

import "sync/atomic"

// counter mixes atomic and plain access to n: every plain use must be
// flagged once the field's address reaches a sync/atomic function.
type counter struct {
	n    uint64
	safe uint64 // never touched atomically: plain access is fine
	typed atomic.Uint64
	ptr   atomic.Pointer[counter]
}

func (c *counter) add() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counter) mixedRead() uint64 {
	return c.n // want `plain access to field n, which is also accessed with sync/atomic`
}

func (c *counter) mixedWrite() {
	c.n = 0 // want `plain access to field n, which is also accessed with sync/atomic`
}

func (c *counter) mixedAlias() *uint64 {
	return &c.n // want `plain access to field n, which is also accessed with sync/atomic`
}

func (c *counter) plainOnly() uint64 {
	c.safe++ // no finding: safe is never accessed atomically
	return c.safe
}

func (c *counter) typedOK() uint64 {
	c.typed.Add(1)
	p := c.ptr.Load()
	_ = p
	return c.typed.Load()
}

func (c *counter) typedCopy() atomic.Uint64 {
	return c.typed // want `field typed has atomic type sync/atomic.Uint64 but is used outside a method call`
}

func (c *counter) typedAddr() *atomic.Pointer[counter] {
	return &c.ptr // want `field ptr has atomic type .* but is used outside a method call`
}

// embedded carries the atomic discipline through an embedded struct:
// selections through the embedded field resolve to the same field object.
type embedded struct {
	counter
}

func (e *embedded) throughEmbedded() uint64 {
	return e.counter.n // want `plain access to field n, which is also accessed with sync/atomic`
}

// ignored shows an audited suppression.
func (c *counter) ignored() uint64 {
	//sdplint:ignore atomicmix read is single-threaded during shutdown
	return c.n
}

// localVars are out of scope: the pass guards shared struct state, and
// vet's own checks cover locals.
func localMix() uint64 {
	var n uint64
	atomic.AddUint64(&n, 1)
	return n
}
