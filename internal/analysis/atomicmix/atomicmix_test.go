package atomicmix_test

import (
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicmix.Analyzer, "a")
}
