package metricnames_test

import (
	"path/filepath"
	"strings"
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/metricnames"
)

// telemetryFiles resolves the real telemetry package sources so the
// testdata can import it the way production code does.
func telemetryFiles(t *testing.T) []string {
	t.Helper()
	pattern := filepath.Join("..", "..", "telemetry", "*.go")
	matches, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		abs, err := filepath.Abs(m)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, abs)
	}
	if len(files) == 0 {
		t.Fatalf("no telemetry sources matched %s", pattern)
	}
	return files
}

func TestMetricNames(t *testing.T) {
	analysistest.RunWithModule(t, analysistest.TestData(t), metricnames.Analyzer, "a",
		"sariadne", map[string][]string{
			"sariadne/internal/telemetry": telemetryFiles(t),
		})
}
