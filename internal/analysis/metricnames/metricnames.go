// Package metricnames enforces the repo's telemetry conventions.
//
// Metric names form a process-wide flat namespace that dashboards and the
// metrics-smoke CI check scrape by name, so three rules keep it auditable:
// names are snake_case with a subsystem prefix (`registry_insert_seconds`,
// not `insertSeconds` or `latency`); metrics register once at package
// initialization, never on request paths where a typo'd or unbounded name
// set leaks memory and panics on duplicates; and names are string
// literals, so the full namespace is greppable. Calls on an explicit
// *telemetry.Registry are exempt from the at-init rule (scoped registries
// are how tests and tools isolate themselves) but still get name checks.
// _test.go files and the telemetry package itself are exempt.
package metricnames

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"sariadne/internal/analysis"
)

// Analyzer checks telemetry metric naming and registration discipline.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc: "telemetry metrics must use literal snake_case prefixed names " +
		"and register at package init, not on hot paths",
	Run: run,
}

// nameRe is the same shape telemetry.Registry enforces at runtime: at
// least two lowercase segments, so every name carries a subsystem prefix.
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// constructors are the metric-creating entry points, both the
// package-level forms and the *Registry methods.
var constructors = map[string]bool{
	"NewCounter":        true,
	"NewGauge":          true,
	"NewBoolGauge":      true,
	"NewFloatGauge":     true,
	"NewHistogram":      true,
	"NewSizeHistogram":  true,
	"NewLabeledGauge":   true,
	"NewLabeledCounter": true,
}

// labeled are the constructors whose third argument is a label key.
var labeled = map[string]bool{
	"NewLabeledGauge":   true,
	"NewLabeledCounter": true,
}

// labelRe bounds labeled-family label keys: a bare lowercase identifier
// ("tenant"), since the key lands verbatim inside every exposition line.
var labelRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func telemetryPath(path string) bool {
	return path == "sariadne/internal/telemetry" || strings.HasSuffix(path, "/internal/telemetry")
}

func run(pass *analysis.Pass) error {
	if telemetryPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				// Package-level var initializers run once at init time.
				checkCalls(pass, d, true)
			case *ast.FuncDecl:
				atInit := d.Recv == nil && d.Name.Name == "init"
				checkCalls(pass, d, atInit)
			}
		}
	}
	return nil
}

func checkCalls(pass *analysis.Pass, root ast.Node, atInit bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !constructors[sel.Sel.Name] {
			return true
		}
		obj, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !isFn || obj.Pkg() == nil || !telemetryPath(obj.Pkg().Path()) {
			return true
		}
		// telemetry.NewX(...) registers in the process-wide default
		// registry; r.NewX(...) targets an explicit scoped one.
		pkgQualified := false
		if id, ok := sel.X.(*ast.Ident); ok {
			_, pkgQualified = pass.TypesInfo.Uses[id].(*types.PkgName)
		}
		if pkgQualified && !atInit {
			pass.Reportf(call.Pos(),
				"telemetry.%s outside a package-level var or init registers metrics dynamically; "+
					"hot-path registration leaks and panics on duplicates", sel.Sel.Name)
		}
		if len(call.Args) > 0 {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				name, err := strconv.Unquote(lit.Value)
				if err == nil && !nameRe.MatchString(name) {
					pass.Reportf(call.Args[0].Pos(),
						"metric name %q is not snake_case with a subsystem prefix (want %s)",
						name, nameRe)
				}
			} else if pkgQualified {
				pass.Reportf(call.Args[0].Pos(),
					"metric name must be a string literal so the namespace stays greppable")
			}
		}
		// NewLabeledGauge/NewLabeledCounter(name, help, label): the label
		// key is scraped verbatim into every `name{label="..."}` line, so
		// it follows the same literal-and-greppable discipline as the
		// family name.
		if labeled[sel.Sel.Name] && len(call.Args) > 2 {
			if lit, ok := call.Args[2].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				label, err := strconv.Unquote(lit.Value)
				if err == nil && !labelRe.MatchString(label) {
					pass.Reportf(call.Args[2].Pos(),
						"label key %q is not a lowercase identifier (want %s)", label, labelRe)
				}
			} else if pkgQualified {
				pass.Reportf(call.Args[2].Pos(),
					"label key must be a string literal so the namespace stays greppable")
			}
		}
		return true
	})
}
