package a

import "sariadne/internal/telemetry"

// Package-level registration with conforming names: the sanctioned shape.
var (
	goodCounter = telemetry.NewCounter("pkg_requests_total", "requests handled")
	goodHist    = telemetry.NewHistogram("pkg_request_seconds", "request latency")
)

var goodBool = telemetry.NewBoolGauge("pkg_healthy", "verdict gauge")

// Labeled families follow the same rules, plus a literal lowercase
// label key (the tenant_* admission gauges are the canonical users).
var goodLabeled = telemetry.NewLabeledGauge("tenant_live_services", "live adverts per tenant", "tenant")

var badLabeledName = telemetry.NewLabeledGauge("TenantLive", "x", "tenant") // want `not snake_case`

var badLabelKey = telemetry.NewLabeledGauge("tenant_rate_tokens", "x", "Tenant-ID") // want `label key "Tenant-ID" is not a lowercase identifier`

// The soak-horizon families follow the same rules: runtime_* gauges from
// the collector, alert_* counters keyed by alert code.
var (
	goodRuntime      = telemetry.NewGauge("runtime_goroutines", "live goroutines")
	goodRuntimeBytes = telemetry.NewGauge("runtime_heap_alloc_bytes", "heap in use")
	goodAlertCounter = telemetry.NewLabeledCounter("alert_fired_total", "alerts by code", "code")
	goodAlertGauge   = telemetry.NewLabeledGauge("alert_active", "active alerts by code", "code")
)

var badRuntimeName = telemetry.NewGauge("runtimeGoroutines", "x") // want `not snake_case`

var badAlertName = telemetry.NewLabeledCounter("AlertFired", "x", "code") // want `not snake_case`

var badAlertKey = telemetry.NewLabeledCounter("alert_resolved_total", "x", "Alert Code") // want `label key "Alert Code" is not a lowercase identifier`

var badCamel = telemetry.NewGauge("PkgEntries", "x") // want `not snake_case`

var badBool = telemetry.NewBoolGauge("Healthy", "x") // want `not snake_case`

var noPrefix = telemetry.NewCounter("requests", "x") // want `not snake_case`

var trailing = telemetry.NewSizeHistogram("pkg_bytes_", "x") // want `not snake_case`

func init() {
	// init-time registration is as good as a package-level var.
	telemetry.NewFloatGauge("pkg_fill_ratio", "ok")
}

func handleRequest(name string) {
	goodCounter.Inc()
	telemetry.NewCounter("pkg_lazy_total", "x") // want `outside a package-level var or init`
	telemetry.NewCounter(name, "x")             // want `outside a package-level var or init` `string literal`
	telemetry.NewCounter("per_request_total", "x").Inc() // want `outside a package-level var or init`
	telemetry.NewLabeledGauge("pkg_lazy_by_node", "x", name) // want `outside a package-level var or init` `label key must be a string literal`
	telemetry.NewLabeledCounter("pkg_lazy_total_by_kind", "x", "kind") // want `outside a package-level var or init`
}

func scopedRegistry() {
	// Scoped registries may be built anywhere (tests, tools), but names
	// are still checked.
	r := telemetry.NewRegistry()
	r.NewCounter("tool_runs_total", "fine")
	r.NewGauge("Bad", "still name-checked") // want `not snake_case`
	r.NewLabeledGauge("tool_rows_by_kind", "fine scoped family", "kind")
	r.NewLabeledCounter("tool_errs_by_kind", "fine scoped family", "kind")
	_ = goodHist
	_ = goodBool
	_ = goodLabeled
	_ = badLabeledName
	_ = badLabelKey
	_ = badCamel
	_ = badBool
	_ = noPrefix
	_ = trailing
}
