// Package compose resolves service compositions over a semantic
// directory. Amigo-S describes, for every service, both the capabilities
// it provides and the capabilities it requires from other networked
// services, precisely so that composition schemes can be built on top
// (Section 2.2 of the paper: "This enables support for any service
// composition scheme, such as a peer-to-peer scheme or a centrally
// coordinated scheme").
//
// Resolve implements the centrally coordinated scheme: starting from a
// root service, every required capability is matched against the
// directory, the best advertisement is selected, and the selected
// provider's own requirements are resolved recursively — producing a
// complete binding plan or a precise report of what is missing.
package compose

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sariadne/internal/process"
	"sariadne/internal/profile"
	"sariadne/internal/registry"
)

// Common errors.
var (
	// ErrUnresolvable is returned when a required capability has no
	// matching advertisement.
	ErrUnresolvable = errors.New("compose: requirement unresolvable")
	// ErrDepthExceeded is returned when recursive resolution exceeds
	// Options.MaxDepth.
	ErrDepthExceeded = errors.New("compose: maximum composition depth exceeded")
	// ErrCycle is returned when services require each other in a loop and
	// Options.AllowCycles is false.
	ErrCycle = errors.New("compose: cyclic composition")
)

// Directory is the slice of a semantic directory that composition needs.
// *registry.Directory implements it.
type Directory interface {
	Query(req *profile.Capability) []registry.Result
}

// ServiceResolver optionally supplies full service descriptions for
// recursive resolution. When the directory cannot provide them (it only
// stores capabilities), recursion stops at depth one.
type ServiceResolver interface {
	// Service returns the full description of a named service, if known.
	Service(name string) (*profile.Service, bool)
}

// Options tunes resolution.
type Options struct {
	// MaxDepth bounds the recursion (default 8).
	MaxDepth int
	// AllowCycles tolerates services transitively requiring an
	// already-bound service instead of failing (the cycle is cut at the
	// repeated service).
	AllowCycles bool
	// Resolver supplies nested service descriptions; nil disables
	// recursion past the directly required capabilities.
	Resolver ServiceResolver
	// Partial records unresolvable requirements in Plan.Missing instead of
	// failing the whole resolution — useful when the service's process
	// model can route around them with Choice branches.
	Partial bool
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	return o
}

// Binding records the advertisement selected for one requirement.
type Binding struct {
	// Requirement is the required capability being satisfied.
	Requirement *profile.Capability
	// Selected is the chosen advertisement (minimal semantic distance).
	Selected registry.Result
	// Alternatives counts other matching advertisements.
	Alternatives int
}

// Plan is a fully resolved composition: the root service plus one binding
// per requirement, and nested plans for each selected provider that has
// requirements of its own.
type Plan struct {
	Service  string
	Bindings []Binding
	Nested   map[string]*Plan // keyed by provider service name
	// Missing lists requirements left unbound under Options.Partial.
	Missing []string
}

// Services returns every service participating in the plan (root first,
// then providers in sorted order, depth-first, deduplicated).
func (p *Plan) Services() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(pl *Plan)
	walk = func(pl *Plan) {
		if !seen[pl.Service] {
			seen[pl.Service] = true
			out = append(out, pl.Service)
		}
		providers := make([]string, 0, len(pl.Bindings))
		for _, b := range pl.Bindings {
			providers = append(providers, b.Selected.Entry.Service)
		}
		sort.Strings(providers)
		for _, provider := range providers {
			if nested, ok := pl.Nested[provider]; ok {
				walk(nested)
				continue
			}
			if !seen[provider] {
				seen[provider] = true
				out = append(out, provider)
			}
		}
	}
	walk(p)
	return out
}

// String renders the plan as an indented tree.
func (p *Plan) String() string {
	var b strings.Builder
	var walk func(pl *Plan, indent string)
	walk = func(pl *Plan, indent string) {
		fmt.Fprintf(&b, "%s%s\n", indent, pl.Service)
		for _, bind := range pl.Bindings {
			fmt.Fprintf(&b, "%s  %s -> %s/%s (distance %d",
				indent, bind.Requirement.Name,
				bind.Selected.Entry.Service, bind.Selected.Entry.Capability.Name,
				bind.Selected.Distance)
			if bind.Alternatives > 0 {
				fmt.Fprintf(&b, ", %d alternatives", bind.Alternatives)
			}
			b.WriteString(")\n")
			if nested, ok := pl.Nested[bind.Selected.Entry.Service]; ok {
				walk(nested, indent+"    ")
			}
		}
	}
	walk(p, "")
	return b.String()
}

// Resolve builds a composition plan for svc against the directory.
func Resolve(dir Directory, svc *profile.Service, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	bound := map[string]bool{svc.Name: true}
	return resolve(dir, svc, opts, bound, 0)
}

func resolve(dir Directory, svc *profile.Service, opts Options, bound map[string]bool, depth int) (*Plan, error) {
	if depth > opts.MaxDepth {
		return nil, fmt.Errorf("%w: at service %q", ErrDepthExceeded, svc.Name)
	}
	plan := &Plan{Service: svc.Name, Nested: map[string]*Plan{}}
	for _, req := range svc.Required {
		results := dir.Query(req)
		// Never select the requesting service itself.
		filtered := results[:0]
		for _, r := range results {
			if r.Entry.Service != svc.Name {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			if opts.Partial {
				plan.Missing = append(plan.Missing, req.Name)
				continue
			}
			return nil, fmt.Errorf("%w: %q of service %q", ErrUnresolvable, req.Name, svc.Name)
		}
		best := filtered[0]
		plan.Bindings = append(plan.Bindings, Binding{
			Requirement:  req,
			Selected:     best,
			Alternatives: len(filtered) - 1,
		})

		provider := best.Entry.Service
		if bound[provider] {
			if opts.AllowCycles {
				continue // cut the cycle at the already-bound service
			}
			if provider != svc.Name {
				return nil, fmt.Errorf("%w: %q reached again via %q", ErrCycle, provider, req.Name)
			}
			continue
		}
		if opts.Resolver == nil {
			continue
		}
		nestedSvc, ok := opts.Resolver.Service(provider)
		if !ok || len(nestedSvc.Required) == 0 {
			continue
		}
		bound[provider] = true
		nested, err := resolve(dir, nestedSvc, opts, bound, depth+1)
		if err != nil {
			return nil, err
		}
		plan.Nested[provider] = nested
	}
	return plan, nil
}

// Binding exposes the plan's own requirement bindings in the form the
// process interpreter consumes: required capability name → selected
// provider service. Nested plans carry their providers' own bindings.
func (p *Plan) Binding() process.MapBinding {
	b := make(process.MapBinding, len(p.Bindings))
	for _, bind := range p.Bindings {
		b[bind.Requirement.Name] = bind.Selected.Entry.Service
	}
	return b
}

// Conversation executes the service's process model (its conversation,
// OWL-S §2.1) against this plan's bindings, returning the interaction
// trace. Services without a process model converse in declaration order
// of their requirements.
func Conversation(svc *profile.Service, plan *Plan) ([]process.Step, error) {
	tree := svc.Process
	if tree == nil {
		nodes := make([]*process.Node, 0, len(svc.Required))
		for _, c := range svc.Required {
			nodes = append(nodes, process.Invoke(c.Name))
		}
		if len(nodes) == 0 {
			return nil, nil
		}
		tree = process.Sequence(nodes...)
	}
	return process.Execute(tree, plan.Binding())
}

// Catalog is a trivial in-memory ServiceResolver.
type Catalog map[string]*profile.Service

// Service implements ServiceResolver.
func (c Catalog) Service(name string) (*profile.Service, bool) {
	s, ok := c[name]
	return s, ok
}

var _ ServiceResolver = Catalog(nil)
