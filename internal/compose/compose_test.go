package compose

import (
	"errors"
	"strings"
	"testing"

	"sariadne/internal/codes"
	"sariadne/internal/match"
	"sariadne/internal/ontology"
	"sariadne/internal/process"
	"sariadne/internal/profile"
	"sariadne/internal/registry"
)

func fixtureDirectory(t testing.TB) *registry.Directory {
	t.Helper()
	reg := codes.NewRegistry()
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	}
	return registry.NewDirectory(match.NewCodeMatcher(reg))
}

func mediaRef(n string) ontology.Ref {
	return ontology.Ref{Ontology: profile.MediaOntologyURI, Name: n}
}

func serversRef(n string) ontology.Ref {
	return ontology.Ref{Ontology: profile.ServersOntologyURI, Name: n}
}

// chainServices builds a three-stage composition:
// PDA requires video -> Workstation provides video, requires storage ->
// NAS provides storage.
func chainServices() (pda, workstation, nas *profile.Service) {
	pda = &profile.Service{
		Name: "PDA",
		Required: []*profile.Capability{{
			Name:     "GetVideoStream",
			Category: serversRef("VideoServer"),
			Inputs:   []ontology.Ref{mediaRef("VideoResource")},
			Outputs:  []ontology.Ref{mediaRef("Stream")},
		}},
	}
	workstation = &profile.Service{
		Name: "Workstation",
		Provided: []*profile.Capability{{
			Name:     "SendDigitalStream",
			Category: serversRef("DigitalServer"),
			Inputs:   []ontology.Ref{mediaRef("DigitalResource")},
			Outputs:  []ontology.Ref{mediaRef("Stream")},
		}},
		Required: []*profile.Capability{{
			Name:     "FetchResource",
			Category: serversRef("Server"),
			Outputs:  []ontology.Ref{mediaRef("DigitalResource")},
		}},
	}
	nas = &profile.Service{
		Name: "NAS",
		Provided: []*profile.Capability{{
			Name:     "ServeFiles",
			Category: serversRef("Server"),
			Outputs:  []ontology.Ref{mediaRef("Resource")},
		}},
	}
	return pda, workstation, nas
}

func TestResolveChain(t *testing.T) {
	dir := fixtureDirectory(t)
	pda, workstation, nas := chainServices()
	for _, s := range []*profile.Service{workstation, nas} {
		if err := dir.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	cat := Catalog{"Workstation": workstation, "NAS": nas}

	plan, err := Resolve(dir, pda, Options{Resolver: cat})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(plan.Bindings) != 1 {
		t.Fatalf("bindings = %v", plan.Bindings)
	}
	if got := plan.Bindings[0].Selected.Entry.Service; got != "Workstation" {
		t.Fatalf("selected %s, want Workstation", got)
	}
	nested, ok := plan.Nested["Workstation"]
	if !ok {
		t.Fatalf("no nested plan: %s", plan)
	}
	if got := nested.Bindings[0].Selected.Entry.Service; got != "NAS" {
		t.Fatalf("nested selected %s, want NAS", got)
	}
	services := plan.Services()
	want := []string{"PDA", "Workstation", "NAS"}
	if len(services) != 3 {
		t.Fatalf("Services = %v, want %v", services, want)
	}
	for i := range want {
		if services[i] != want[i] {
			t.Fatalf("Services = %v, want %v", services, want)
		}
	}
	if s := plan.String(); !strings.Contains(s, "GetVideoStream -> Workstation/SendDigitalStream") {
		t.Fatalf("plan rendering:\n%s", s)
	}
}

func TestResolveUnresolvable(t *testing.T) {
	dir := fixtureDirectory(t)
	pda, _, _ := chainServices()
	if _, err := Resolve(dir, pda, Options{}); !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("Resolve = %v, want ErrUnresolvable", err)
	}
}

func TestResolveMissingNestedRequirement(t *testing.T) {
	dir := fixtureDirectory(t)
	pda, workstation, _ := chainServices()
	if err := dir.Register(workstation); err != nil {
		t.Fatal(err)
	}
	// NAS absent: the workstation's own requirement fails.
	_, err := Resolve(dir, pda, Options{Resolver: Catalog{"Workstation": workstation}})
	if !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("Resolve = %v, want ErrUnresolvable", err)
	}
	// Without a resolver, recursion stops and the plan succeeds shallowly.
	plan, err := Resolve(dir, pda, Options{})
	if err != nil || len(plan.Nested) != 0 {
		t.Fatalf("shallow resolve: %v, %v", plan, err)
	}
}

func TestResolveCycle(t *testing.T) {
	dir := fixtureDirectory(t)
	// A requires B's capability; B requires A's capability.
	a := &profile.Service{
		Name: "A",
		Provided: []*profile.Capability{{
			Name:     "ServeVideo",
			Category: serversRef("VideoServer"),
			Outputs:  []ontology.Ref{mediaRef("VideoResource")},
		}},
		Required: []*profile.Capability{{
			Name:     "NeedSound",
			Category: serversRef("SoundServer"),
			Outputs:  []ontology.Ref{mediaRef("SoundResource")},
		}},
	}
	b := &profile.Service{
		Name: "B",
		Provided: []*profile.Capability{{
			Name:     "ServeSound",
			Category: serversRef("SoundServer"),
			Outputs:  []ontology.Ref{mediaRef("SoundResource")},
		}},
		Required: []*profile.Capability{{
			Name:     "NeedVideo",
			Category: serversRef("VideoServer"),
			Outputs:  []ontology.Ref{mediaRef("VideoResource")},
		}},
	}
	for _, s := range []*profile.Service{a, b} {
		if err := dir.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	cat := Catalog{"A": a, "B": b}
	root := &profile.Service{
		Name: "Root",
		Required: []*profile.Capability{{
			Name:     "NeedVideo",
			Category: serversRef("VideoServer"),
			Outputs:  []ontology.Ref{mediaRef("VideoResource")},
		}},
	}
	if _, err := Resolve(dir, root, Options{Resolver: cat}); !errors.Is(err, ErrCycle) {
		t.Fatalf("Resolve = %v, want ErrCycle", err)
	}
	plan, err := Resolve(dir, root, Options{Resolver: cat, AllowCycles: true})
	if err != nil {
		t.Fatalf("Resolve with AllowCycles: %v", err)
	}
	if len(plan.Services()) != 3 { // Root, A, B
		t.Fatalf("Services = %v", plan.Services())
	}
}

func TestResolveNeverSelectsSelf(t *testing.T) {
	dir := fixtureDirectory(t)
	// The service provides exactly what it requires; resolution must not
	// bind it to itself.
	selfish := &profile.Service{
		Name: "Selfish",
		Provided: []*profile.Capability{{
			Name:     "ServeVideo",
			Category: serversRef("VideoServer"),
			Outputs:  []ontology.Ref{mediaRef("VideoResource")},
		}},
		Required: []*profile.Capability{{
			Name:     "NeedVideo",
			Category: serversRef("VideoServer"),
			Outputs:  []ontology.Ref{mediaRef("VideoResource")},
		}},
	}
	if err := dir.Register(selfish); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(dir, selfish, Options{}); !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("Resolve = %v, want ErrUnresolvable (self excluded)", err)
	}
}

func TestResolveDepthLimit(t *testing.T) {
	dir := fixtureDirectory(t)
	// Build a long chain: svc0 requires svc1's capability, ... depth 5.
	const n = 6
	cat := Catalog{}
	cats := []string{"Server", "DigitalServer", "StreamingServer", "VideoServer", "SoundServer", "GameServer"}
	var services []*profile.Service
	for i := 0; i < n; i++ {
		s := &profile.Service{Name: cats[i] + "Svc"}
		s.Provided = []*profile.Capability{{
			Name:     "Provide" + cats[i],
			Category: serversRef(cats[i]),
			Outputs:  []ontology.Ref{mediaRef("Stream")},
		}}
		if i+1 < n {
			s.Required = []*profile.Capability{{
				Name:     "Need" + cats[i+1],
				Category: serversRef(cats[i+1]),
				Outputs:  []ontology.Ref{mediaRef("Stream")},
			}}
		}
		services = append(services, s)
		cat[s.Name] = s
	}
	for _, s := range services[1:] {
		if err := dir.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Resolve(dir, services[0], Options{Resolver: cat, MaxDepth: 2}); !errors.Is(err, ErrDepthExceeded) {
		t.Fatalf("Resolve = %v, want ErrDepthExceeded", err)
	}
	if _, err := Resolve(dir, services[0], Options{Resolver: cat}); err != nil {
		t.Fatalf("Resolve with default depth: %v", err)
	}
}

func TestConversation(t *testing.T) {
	dir := fixtureDirectory(t)
	pda, workstation, nas := chainServices()
	for _, s := range []*profile.Service{workstation, nas} {
		if err := dir.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := Resolve(dir, pda, Options{Resolver: Catalog{"Workstation": workstation, "NAS": nas}})
	if err != nil {
		t.Fatal(err)
	}

	// Without a process model the conversation is the declaration order.
	steps, err := Conversation(pda, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Capability != "GetVideoStream" || steps[0].Provider != "Workstation" {
		t.Fatalf("steps = %v", steps)
	}

	// With an explicit process model (a choice preferring a capability
	// nobody provides), the fallback branch binds.
	pda.Required = append(pda.Required, &profile.Capability{
		Name:     "GetHologram",
		Category: serversRef("GameServer"),
		Outputs:  []ontology.Ref{mediaRef("GameResource")},
	})
	pda.Process = process.Choice(
		process.Invoke("GetHologram"),
		process.Invoke("GetVideoStream"),
	)
	// GetHologram is unresolvable; resolve only the video requirement by
	// keeping the original plan and executing the conversation against it.
	steps, err = Conversation(pda, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Capability != "GetVideoStream" {
		t.Fatalf("fallback steps = %v", steps)
	}

	// A service with no requirements converses trivially.
	steps, err = Conversation(nas, &Plan{Service: "NAS"})
	if err != nil || steps != nil {
		t.Fatalf("empty conversation = %v, %v", steps, err)
	}
}

func TestResolvePartial(t *testing.T) {
	dir := fixtureDirectory(t)
	pda, workstation, nas := chainServices()
	for _, s := range []*profile.Service{workstation, nas} {
		if err := dir.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	pda.Required = append(pda.Required, &profile.Capability{
		Name:     "GetHologram",
		Category: ontology.Ref{Ontology: "http://nowhere.example/ont", Name: "HoloProjector"},
		Outputs:  []ontology.Ref{{Ontology: "http://nowhere.example/ont", Name: "Hologram"}},
	})
	pda.Process = process.Choice(
		process.Invoke("GetHologram"),
		process.Invoke("GetVideoStream"),
	)

	// Strict resolution fails on the hologram.
	if _, err := Resolve(dir, pda, Options{}); !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("strict Resolve = %v", err)
	}
	// Partial resolution records the gap and the conversation routes
	// around it.
	plan, err := Resolve(dir, pda, Options{Partial: true})
	if err != nil {
		t.Fatalf("partial Resolve: %v", err)
	}
	if len(plan.Missing) != 1 || plan.Missing[0] != "GetHologram" {
		t.Fatalf("Missing = %v", plan.Missing)
	}
	steps, err := Conversation(pda, plan)
	if err != nil {
		t.Fatalf("Conversation: %v", err)
	}
	if len(steps) != 1 || steps[0].Capability != "GetVideoStream" {
		t.Fatalf("steps = %v", steps)
	}
}
