package codes

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sariadne/internal/ontology"
)

func mediaClassified(t testing.TB) *ontology.Classified {
	t.Helper()
	o := ontology.New("http://amigo.example/ont/media", "1")
	for _, c := range []ontology.Class{
		{Name: "Resource"},
		{Name: "DigitalResource", SubClassOf: []string{"Resource"}},
		{Name: "VideoResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "SoundResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "GameResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "Movie", SubClassOf: []string{"VideoResource"}},
		{Name: "Film", EquivalentTo: []string{"Movie"}},
		{Name: "Stream"},
		{Name: "VideoStream", SubClassOf: []string{"Stream"}},
	} {
		o.MustAddClass(c)
	}
	return ontology.MustClassify(o)
}

func TestBoundaryMatchesPaperExamples(t *testing.T) {
	// With p=2, k=5 the function produces, block by block:
	//   x=0..4  -> 1, 1.2, 1.4, 1.6, 1.8
	//   x=5..9  -> 0.5, 0.6, 0.7, 0.8, 0.9
	//   x=10..14-> 0.25, 0.3, 0.35, 0.4, 0.45
	want := map[int]float64{
		0: 1, 1: 1.2, 2: 1.4, 3: 1.6, 4: 1.8,
		5: 0.5, 6: 0.6, 7: 0.7, 8: 0.8, 9: 0.9,
		10: 0.25, 11: 0.3, 12: 0.35, 13: 0.4, 14: 0.45,
	}
	for x, w := range want {
		if got := Boundary(x, DefaultParams); math.Abs(got-w) > 1e-12 {
			t.Errorf("Boundary(%d) = %v, want %v", x, got, w)
		}
	}
}

func TestSlotsDisjointAndShrinking(t *testing.T) {
	// Sibling slots never overlap, regardless of index, and widths shrink
	// from block to block.
	parent := Interval{Lo: 0, Hi: 1}
	var slots []Interval
	for x := 0; x < 60; x++ {
		slots = append(slots, childSlot(parent, x, DefaultParams))
	}
	for i, a := range slots {
		if a.Lo < parent.Lo || a.Hi > parent.Hi {
			t.Fatalf("slot %d %v escapes parent", i, a)
		}
		for j, b := range slots {
			if i != j && a.Overlaps(b) {
				t.Fatalf("slots %d %v and %d %v overlap", i, a, j, b)
			}
		}
	}
	if slots[5].Width() >= slots[0].Width() {
		t.Error("widths do not shrink across blocks")
	}
}

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{{1, 5}, {0, 0}, {2, 0}, {-2, 5}} {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("Params%v.Validate() = %v, want ErrBadParams", p, err)
		}
	}
	if err := DefaultParams.Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
	if _, err := Encode(mediaClassified(t), Params{P: 1, K: 0}); err == nil {
		t.Error("Encode accepted bad params")
	}
}

func TestEncodeSubsumptionAgreesWithClassified(t *testing.T) {
	cl := mediaClassified(t)
	tbl := MustEncode(cl, DefaultParams)

	names := []string{"Resource", "DigitalResource", "VideoResource", "SoundResource",
		"GameResource", "Movie", "Film", "Stream", "VideoStream"}
	for _, a := range names {
		for _, b := range names {
			if got, want := tbl.Subsumes(a, b), cl.Subsumes(a, b); got != want {
				t.Errorf("Subsumes(%q,%q): codes=%v classified=%v", a, b, got, want)
			}
		}
	}
}

func TestEncodeDistanceAgreesWithClassified(t *testing.T) {
	cl := mediaClassified(t)
	tbl := MustEncode(cl, DefaultParams)
	names := []string{"Resource", "DigitalResource", "VideoResource", "Movie", "Film", "Stream"}
	for _, a := range names {
		for _, b := range names {
			gd, gok := tbl.Distance(a, b)
			wd, wok := cl.Distance(a, b)
			if gd != wd || gok != wok {
				t.Errorf("Distance(%q,%q): codes=(%d,%v) classified=(%d,%v)", a, b, gd, gok, wd, wok)
			}
		}
	}
}

func TestUnknownNames(t *testing.T) {
	tbl := MustEncode(mediaClassified(t), DefaultParams)
	if tbl.Subsumes("Nope", "Movie") || tbl.Subsumes("Movie", "Nope") {
		t.Error("unknown names must not subsume")
	}
	if _, ok := tbl.Distance("Nope", "Movie"); ok {
		t.Error("distance to unknown name must be NULL")
	}
	if _, ok := tbl.Code("Nope"); ok {
		t.Error("Code returned ok for unknown name")
	}
}

func TestEquivalentShareCode(t *testing.T) {
	tbl := MustEncode(mediaClassified(t), DefaultParams)
	cm, ok1 := tbl.Code("Movie")
	cf, ok2 := tbl.Code("Film")
	if !ok1 || !ok2 {
		t.Fatal("missing codes")
	}
	if cm.Primary != cf.Primary {
		t.Fatalf("equivalent classes have distinct primaries: %v vs %v", cm.Primary, cf.Primary)
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{Lo: 0.2, Hi: 0.8}
	tests := []struct {
		b                  Interval
		contains, overlaps bool
	}{
		{Interval{0.3, 0.5}, true, true},
		{Interval{0.2, 0.8}, true, true},
		{Interval{0.1, 0.5}, false, true},
		{Interval{0.5, 0.9}, false, true},
		{Interval{0.8, 0.9}, false, false}, // half-open: touching is disjoint
		{Interval{0.0, 0.2}, false, false},
	}
	for _, tt := range tests {
		if got := a.Contains(tt.b); got != tt.contains {
			t.Errorf("%v.Contains(%v) = %v, want %v", a, tt.b, got, tt.contains)
		}
		if got := a.Overlaps(tt.b); got != tt.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, tt.b, got, tt.overlaps)
		}
	}
	if !a.ContainsPoint(0.2) || a.ContainsPoint(0.8) {
		t.Error("ContainsPoint half-open semantics violated")
	}
	if a.Width() != 0.6000000000000001 && math.Abs(a.Width()-0.6) > 1e-12 {
		t.Errorf("Width = %v", a.Width())
	}
	if a.IsZero() || !(Interval{}).IsZero() {
		t.Error("IsZero wrong")
	}
	if s := a.String(); s == "" {
		t.Error("empty String")
	}
}

func TestStats(t *testing.T) {
	tbl := MustEncode(mediaClassified(t), DefaultParams)
	s := tbl.Stats()
	if s.Concepts != 8 { // Movie+Film collapsed
		t.Errorf("Concepts = %d, want 8", s.Concepts)
	}
	if s.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", s.MaxDepth)
	}
	if s.MinWidth <= 0 {
		t.Errorf("MinWidth = %v, want > 0", s.MinWidth)
	}
	if s.MaxCovers < 1 {
		t.Errorf("MaxCovers = %d", s.MaxCovers)
	}
}

func TestRegistry(t *testing.T) {
	cl := mediaClassified(t)
	tbl := MustEncode(cl, DefaultParams)
	r := NewRegistry()
	if r.Len() != 0 {
		t.Fatal("new registry not empty")
	}
	r.Register(tbl)
	if r.Len() != 1 {
		t.Fatal("Len != 1 after Register")
	}
	if _, ok := r.Resolve(tbl.URI()); !ok {
		t.Fatal("Resolve failed")
	}
	if _, ok := r.Resolve("other"); ok {
		t.Fatal("Resolve found unregistered URI")
	}
	if _, err := r.ResolveVersion(tbl.URI(), "1"); err != nil {
		t.Fatalf("ResolveVersion: %v", err)
	}
	if _, err := r.ResolveVersion(tbl.URI(), "2"); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("ResolveVersion stale = %v, want ErrVersionMismatch", err)
	}
	if _, err := r.ResolveVersion("other", "1"); err == nil {
		t.Fatal("ResolveVersion accepted unknown URI")
	}
	uris := r.URIs()
	if len(uris) != 1 || uris[0] != tbl.URI() {
		t.Fatalf("URIs = %v", uris)
	}
}

// randomHierarchy builds a random DAG ontology with n classes: class i picks
// up to 3 parents among classes [0, i), and a few random equivalences.
func randomHierarchy(rng *rand.Rand, n int) *ontology.Ontology {
	o := ontology.New("http://rand.example/ont", "1")
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("C%03d", i)
	}
	for i := 0; i < n; i++ {
		var c ontology.Class
		c.Name = names[i]
		if i > 0 {
			nparents := rng.Intn(3)
			if rng.Intn(4) > 0 && nparents == 0 {
				nparents = 1 // bias toward connected hierarchies
			}
			seen := map[int]bool{}
			for j := 0; j < nparents; j++ {
				p := rng.Intn(i)
				if !seen[p] {
					seen[p] = true
					c.SubClassOf = append(c.SubClassOf, names[p])
				}
			}
		}
		if i > 1 && rng.Intn(10) == 0 {
			c.EquivalentTo = append(c.EquivalentTo, names[rng.Intn(i)])
		}
		o.MustAddClass(c)
	}
	return o
}

// TestPropertySubsumptionEquivalence is the core invariant of the encoding:
// for random hierarchies, interval-based subsumption agrees exactly with
// reasoner-based subsumption for every concept pair.
func TestPropertySubsumptionEquivalence(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%40) + 2
		rng := rand.New(rand.NewSource(seed))
		o := randomHierarchy(rng, n)
		cl, err := ontology.Classify(o)
		if err != nil {
			return false
		}
		tbl, err := Encode(cl, DefaultParams)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := fmt.Sprintf("C%03d", i), fmt.Sprintf("C%03d", j)
				if tbl.Subsumes(a, b) != cl.Subsumes(a, b) {
					t.Logf("seed=%d n=%d: disagreement on (%s,%s)", seed, n, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDistanceEquivalence checks that encoded level distances agree
// with classified ones on random hierarchies.
func TestPropertyDistanceEquivalence(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%30) + 2
		rng := rand.New(rand.NewSource(seed))
		cl, err := ontology.Classify(randomHierarchy(rng, n))
		if err != nil {
			return false
		}
		tbl, err := Encode(cl, DefaultParams)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := fmt.Sprintf("C%03d", i), fmt.Sprintf("C%03d", j)
				gd, gok := tbl.Distance(a, b)
				wd, wok := cl.Distance(a, b)
				if gd != wd || gok != wok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIntervalsNestOrDisjoint: primary intervals of any two concepts
// either nest or are disjoint — partial overlap would break containment
// reasoning.
func TestPropertyIntervalsNestOrDisjoint(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%40) + 2
		rng := rand.New(rand.NewSource(seed))
		cl, err := ontology.Classify(randomHierarchy(rng, n))
		if err != nil {
			return false
		}
		tbl, err := Encode(cl, DefaultParams)
		if err != nil {
			return false
		}
		var prims []Interval
		seen := map[Interval]bool{}
		for i := 0; i < n; i++ {
			c, ok := tbl.Code(fmt.Sprintf("C%03d", i))
			if !ok {
				return false
			}
			if !seen[c.Primary] {
				seen[c.Primary] = true
				prims = append(prims, c.Primary)
			}
		}
		for i, a := range prims {
			for j, b := range prims {
				if i == j {
					continue
				}
				if a.Overlaps(b) && !a.Contains(b) && !b.Contains(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepChainEncodable(t *testing.T) {
	// A 60-level chain must still produce strictly positive widths.
	o := ontology.New("u", "1")
	o.MustAddClass(ontology.Class{Name: "C0"})
	for i := 1; i < 60; i++ {
		o.MustAddClass(ontology.Class{
			Name:       fmt.Sprintf("C%d", i),
			SubClassOf: []string{fmt.Sprintf("C%d", i-1)},
		})
	}
	tbl := MustEncode(ontology.MustClassify(o), DefaultParams)
	s := tbl.Stats()
	if s.MinWidth <= 0 {
		t.Fatalf("MinWidth = %v at depth %d", s.MinWidth, s.MaxDepth)
	}
	if !tbl.Subsumes("C0", "C59") {
		t.Fatal("chain top must subsume bottom")
	}
	if d, ok := tbl.Distance("C0", "C59"); !ok || d != 59 {
		t.Fatalf("Distance(C0,C59) = (%d,%v), want (59,true)", d, ok)
	}
}

func TestWideFanoutEncodable(t *testing.T) {
	// 1000 siblings under one parent: the paper quotes >1000 first-level
	// entries for p=2, k=5 on 64-bit doubles.
	o := ontology.New("u", "1")
	o.MustAddClass(ontology.Class{Name: "Root"})
	for i := 0; i < 1000; i++ {
		o.MustAddClass(ontology.Class{
			Name:       fmt.Sprintf("C%d", i),
			SubClassOf: []string{"Root"},
		})
	}
	tbl := MustEncode(ontology.MustClassify(o), DefaultParams)
	if s := tbl.Stats(); s.MinWidth <= 0 {
		t.Fatalf("MinWidth = %v", s.MinWidth)
	}
	for _, n := range []string{"C0", "C500", "C999"} {
		if !tbl.Subsumes("Root", n) {
			t.Fatalf("Root must subsume %s", n)
		}
		if tbl.Subsumes(n, "Root") {
			t.Fatalf("%s must not subsume Root", n)
		}
	}
	if tbl.Subsumes("C0", "C999") {
		t.Fatal("siblings must not subsume each other")
	}
}
