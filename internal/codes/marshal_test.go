package codes

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sariadne/internal/ontology"
)

func TestMarshalTableRoundTrip(t *testing.T) {
	tbl := MustEncode(mediaClassified(t), DefaultParams)
	data, err := MarshalTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.URI() != tbl.URI() || back.Version() != tbl.Version() || back.Params() != tbl.Params() {
		t.Fatalf("identity changed: %s/%s/%v", back.URI(), back.Version(), back.Params())
	}
	names := []string{"Resource", "DigitalResource", "VideoResource", "SoundResource",
		"GameResource", "Movie", "Film", "Stream", "VideoStream"}
	for _, a := range names {
		for _, b := range names {
			if back.Subsumes(a, b) != tbl.Subsumes(a, b) {
				t.Errorf("Subsumes(%q,%q) changed across round trip", a, b)
			}
			gd, gok := back.Distance(a, b)
			wd, wok := tbl.Distance(a, b)
			if gd != wd || gok != wok {
				t.Errorf("Distance(%q,%q) changed: (%d,%v) vs (%d,%v)", a, b, gd, gok, wd, wok)
			}
		}
	}
}

func TestUnmarshalTableErrors(t *testing.T) {
	tbl := MustEncode(mediaClassified(t), DefaultParams)
	good, err := MarshalTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(s string) string) []byte {
		return []byte(mutate(string(good)))
	}
	tests := map[string][]byte{
		"garbage":       []byte("not json"),
		"bad params":    corrupt(func(s string) string { return replaceOnce(s, `"p":2`, `"p":0`) }),
		"dup class":     corrupt(func(s string) string { return replaceOnce(s, `"Film"`, `"Movie"`) }),
		"empty primary": corrupt(func(s string) string { return replaceOnce(s, `"primary":[[`, `"primary":[[9,9],[`) }),
	}
	for name, data := range tests {
		if _, err := UnmarshalTable(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Inconsistent array lengths.
	if _, err := UnmarshalTable([]byte(`{"uri":"u","version":"1","p":2,"k":5,"members":[["A"]],"primary":[],"covers":[],"depth":[],"ancestors":[]}`)); err == nil {
		t.Error("inconsistent payload accepted")
	}
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

// TestPropertyMarshalPreservesSemantics: on random hierarchies, the
// serialized table answers identically to the original for all pairs.
func TestPropertyMarshalPreservesSemantics(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%30) + 2
		rng := rand.New(rand.NewSource(seed))
		cl, err := ontology.Classify(randomHierarchy(rng, n))
		if err != nil {
			return false
		}
		tbl, err := Encode(cl, DefaultParams)
		if err != nil {
			return false
		}
		data, err := MarshalTable(tbl)
		if err != nil {
			return false
		}
		back, err := UnmarshalTable(data)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := fmt.Sprintf("C%03d", i), fmt.Sprintf("C%03d", j)
				if back.Subsumes(a, b) != tbl.Subsumes(a, b) {
					return false
				}
				gd, gok := back.Distance(a, b)
				wd, wok := tbl.Distance(a, b)
				if gd != wd || gok != wok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
