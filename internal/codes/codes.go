// Package codes implements the numeric interval encoding of classified
// ontologies described in Section 3.2 of the paper (after Constantinescu &
// Faltings, "Efficient matchmaking and directory services", WI'03).
//
// Every concept of a classified hierarchy is assigned an interval of the
// unit line such that intervals nest exactly along subsumption: concept A
// subsumes concept B if and only if B's interval is contained in (one of)
// A's. Once ontologies are encoded — an offline step — runtime semantic
// reasoning reduces to numeric comparison of interval bounds, which is what
// makes semantic matching competitive with syntactic matching.
//
// Sibling subdivision uses the paper's linear inverse exponential function
//
//	linKinvexpP(x) = 1/p^⌊x/k⌋ + (x mod k) · (1/k) · (1/p^⌊x/k⌋)
//
// whose consecutive values carve the half-open span (0, 2) into infinitely
// many disjoint, exponentially shrinking child slots: slot x is
// [f(x), f(x) + (1/k)/p^⌊x/k⌋). New siblings can therefore always be added
// without re-encoding existing ones.
//
// Hierarchies are DAGs, not trees, so a concept has one primary interval
// (from a spanning tree of the hierarchy) and its full code is the minimal
// set of primary intervals covering all of its descendants. Subsumption is
// then: primary(B) ⊆ some interval of code(A).
//
// Precision: nesting the subdivision in absolute float64 coordinates loses
// the tiny child widths once the parent offset dominates (the same force
// behind the paper's "1071 first-level entries" capacity figure). Encode
// therefore evaluates the subdivision exactly over rationals (math/big) and
// then maps the boundary set monotonically onto integer ranks. Containment
// is invariant under a monotone map, so runtime subsumption remains a plain
// numeric comparison — now exact at any depth and fanout.
package codes

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"sariadne/internal/ontology"
)

// Errors reported by encoding and lookups.
var (
	// ErrBadParams is returned for parameters outside the valid range.
	ErrBadParams = errors.New("codes: p must be >= 2 and k >= 1")
	// ErrVersionMismatch is returned when codes from one ontology version
	// are compared against a table derived from another (Section 3.2's
	// consistency rule: stale codes must be refreshed, never compared).
	ErrVersionMismatch = errors.New("codes: ontology version mismatch")
	// ErrUnknownConcept is returned when a name has no code in the table.
	ErrUnknownConcept = errors.New("codes: unknown concept")
)

// Params selects the subdivision constants of the encoding function. The
// paper evaluates p=2, k=5, for which a 64-bit double supports 1071 entries
// on the first level and hundreds of levels of nesting.
type Params struct {
	P int
	K int
}

// DefaultParams are the constants evaluated in the paper.
var DefaultParams = Params{P: 2, K: 5}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.P < 2 || p.K < 1 {
		return fmt.Errorf("%w: got p=%d k=%d", ErrBadParams, p.P, p.K)
	}
	return nil
}

// Boundary evaluates the paper's linKinvexpP function at x: the lower edge
// of sibling slot x in the (0, 2) child span.
func Boundary(x int, p Params) float64 {
	block := x / p.K
	offset := x % p.K
	base := 1.0 / math.Pow(float64(p.P), float64(block))
	return base + float64(offset)*(1.0/float64(p.K))*base
}

// slotWidth returns the width of sibling slot x.
func slotWidth(x int, p Params) float64 {
	block := x / p.K
	return (1.0 / float64(p.K)) / math.Pow(float64(p.P), float64(block))
}

// Interval is a half-open interval [Lo, Hi) on the unit line.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether other ⊆ i.
func (i Interval) Contains(other Interval) bool {
	return i.Lo <= other.Lo && other.Hi <= i.Hi
}

// ContainsPoint reports whether x ∈ [Lo, Hi).
func (i Interval) ContainsPoint(x float64) bool {
	return i.Lo <= x && x < i.Hi
}

// Overlaps reports whether the two intervals share any point.
func (i Interval) Overlaps(other Interval) bool {
	return i.Lo < other.Hi && other.Lo < i.Hi
}

// Width returns Hi - Lo.
func (i Interval) Width() float64 { return i.Hi - i.Lo }

// IsZero reports whether the interval is the zero value.
func (i Interval) IsZero() bool { return i.Lo == 0 && i.Hi == 0 }

// String renders the interval with enough digits to be diagnosable.
func (i Interval) String() string { return fmt.Sprintf("[%.12g,%.12g)", i.Lo, i.Hi) }

// childSlot returns the interval of the x-th child inside parent, using the
// paper's subdivision: the (0,2) child span scaled by half into the parent.
// This float64 form illustrates the geometry; Encode uses the exact
// rational equivalent (childSlotRat).
func childSlot(parent Interval, x int, p Params) Interval {
	w := parent.Width()
	lo := parent.Lo + w*Boundary(x, p)/2
	return Interval{Lo: lo, Hi: lo + w*slotWidth(x, p)/2}
}

// ratInterval is an exact interval used during encoding.
type ratInterval struct {
	lo, hi *big.Rat
}

// boundaryRat is Boundary over exact rationals:
// (k + x mod k) / (k · p^⌊x/k⌋).
func boundaryRat(x int, p Params) *big.Rat {
	block := x / p.K
	offset := x % p.K
	den := new(big.Int).Exp(big.NewInt(int64(p.P)), big.NewInt(int64(block)), nil)
	den.Mul(den, big.NewInt(int64(p.K)))
	return new(big.Rat).SetFrac(big.NewInt(int64(p.K+offset)), den)
}

// slotWidthRat is slotWidth over exact rationals: 1 / (k · p^⌊x/k⌋).
func slotWidthRat(x int, p Params) *big.Rat {
	block := x / p.K
	den := new(big.Int).Exp(big.NewInt(int64(p.P)), big.NewInt(int64(block)), nil)
	den.Mul(den, big.NewInt(int64(p.K)))
	return new(big.Rat).SetFrac(big.NewInt(1), den)
}

// childSlotRat returns the exact interval of the x-th child inside parent.
func childSlotRat(parent ratInterval, x int, p Params) ratInterval {
	w := new(big.Rat).Sub(parent.hi, parent.lo)
	half := big.NewRat(1, 2)
	lo := new(big.Rat).Mul(w, boundaryRat(x, p))
	lo.Mul(lo, half)
	lo.Add(lo, parent.lo)
	hi := new(big.Rat).Mul(w, slotWidthRat(x, p))
	hi.Mul(hi, half)
	hi.Add(hi, lo)
	return ratInterval{lo: lo, hi: hi}
}

// Code is the full encoded identity of a concept: its primary interval plus
// the minimal cover of all descendants' primary intervals.
type Code struct {
	// Primary is the concept's own interval in the spanning tree; it
	// contains the primaries of all tree descendants.
	Primary Interval
	// Covers is the minimal set of intervals containing the primaries of
	// all hierarchy (DAG) descendants; it always includes Primary. Sorted
	// by Lo, pairwise non-nested.
	Covers []Interval
}

// Subsumes reports whether this code's concept subsumes the concept whose
// code is other: other's primary interval must fall inside one of the
// covering intervals. This is the paper's "semantic reasoning reduced to a
// numeric comparison of codes".
//
//sdp:hotpath
func (c Code) Subsumes(other Code) bool {
	for _, iv := range c.Covers {
		if iv.Contains(other.Primary) {
			return true
		}
	}
	return false
}

// Table holds the codes for every concept of one classified ontology
// version, along with the precomputed level distances that the matching
// relation's d(·,·) needs. Tables are immutable after Encode and safe for
// concurrent use.
type Table struct {
	uri     string
	version string
	params  Params

	names     map[string]int // class name -> concept index
	codes     []Code
	depth     []int
	ancestors []map[int]int // strict ancestor -> min hops
}

// Encode derives the code table from a classified hierarchy. The spanning
// tree used for primary intervals picks each concept's first parent (in
// canonical order); remaining hierarchy edges only influence Covers.
func Encode(cl *ontology.Classified, params Params) (*Table, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := cl.NumConcepts()
	t := &Table{
		uri:       cl.URI(),
		version:   cl.Version(),
		params:    params,
		names:     make(map[string]int),
		codes:     make([]Code, n),
		depth:     make([]int, n),
		ancestors: make([]map[int]int, n),
	}

	// Assign primary intervals by BFS over the spanning tree. The virtual
	// root spans [0, 1); hierarchy roots are its children.
	childCount := make([]int, n+1) // per tree parent; slot n is the virtual root
	treeParent := make([]int, n)
	for i := 0; i < n; i++ {
		parents := cl.Parents(i)
		if len(parents) == 0 {
			treeParent[i] = n
		} else {
			treeParent[i] = parents[0]
		}
		t.depth[i] = cl.Depth(i)
		t.ancestors[i] = cl.AncestorsIndex(i)
		for _, name := range cl.Members(i) {
			t.names[name] = i
		}
	}
	// Exact rational intervals, assigned by BFS from the roots so a
	// parent's interval exists before its tree children's. The virtual
	// root spans [0, 1).
	unit := ratInterval{lo: big.NewRat(0, 1), hi: big.NewRat(1, 1)}
	exact := make([]ratInterval, n)
	queue := cl.Roots()
	assigned := make([]bool, n)
	for _, r := range queue {
		exact[r] = childSlotRat(unit, childCount[n], params)
		childCount[n]++
		assigned[r] = true
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, c := range cl.Children(u) {
			if treeParent[c] != u || assigned[c] {
				continue
			}
			exact[c] = childSlotRat(exact[u], childCount[u], params)
			childCount[u]++
			assigned[c] = true
			queue = append(queue, c)
		}
	}
	for i := 0; i < n; i++ {
		if !assigned[i] {
			// Unreachable via tree-parent BFS cannot happen in a DAG, but
			// guard against it rather than emit a zero interval silently.
			return nil, fmt.Errorf("codes: concept %q not assigned an interval", cl.CanonicalName(i))
		}
	}

	// Compress the exact boundaries onto integer ranks. The map is
	// monotone, so interval containment — the only relation runtime
	// matching consults — is preserved exactly, while comparisons stay
	// plain float64 (holding small integers, hence exact).
	bounds := make([]*big.Rat, 0, 2*n)
	for i := 0; i < n; i++ {
		bounds = append(bounds, exact[i].lo, exact[i].hi)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].Cmp(bounds[j]) < 0 })
	rank := func(r *big.Rat) float64 {
		// Binary search for the first equal element; duplicates share ranks
		// because the slice is sorted and Cmp-based search finds the run.
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if bounds[mid].Cmp(r) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return float64(lo)
	}
	for i := 0; i < n; i++ {
		t.codes[i].Primary = Interval{Lo: rank(exact[i].lo), Hi: rank(exact[i].hi)}
	}

	// Covers: a concept's cover is its own primary plus the primaries of
	// every strict descendant, minimized by dropping intervals nested in
	// another. Descendant sets come from the ancestor closure.
	desc := make([][]int, n)
	for i := 0; i < n; i++ {
		for a := range t.ancestors[i] {
			desc[a] = append(desc[a], i)
		}
	}
	for i := 0; i < n; i++ {
		ivs := []Interval{t.codes[i].Primary}
		for _, d := range desc[i] {
			ivs = append(ivs, t.codes[d].Primary)
		}
		t.codes[i].Covers = minimizeCover(ivs)
	}
	return t, nil
}

// MustEncode is Encode that panics on error; for static fixtures.
func MustEncode(cl *ontology.Classified, params Params) *Table {
	t, err := Encode(cl, params)
	if err != nil {
		panic(err)
	}
	return t
}

// minimizeCover drops intervals contained in another and sorts by Lo.
func minimizeCover(ivs []Interval) []Interval {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi > ivs[j].Hi // widest first among same Lo
	})
	out := ivs[:0]
	var maxHi float64 = -1
	for _, iv := range ivs {
		if iv.Hi <= maxHi {
			continue // nested in a previously kept interval
		}
		out = append(out, iv)
		maxHi = iv.Hi
	}
	return append([]Interval(nil), out...)
}

// URI returns the ontology URI the table encodes.
func (t *Table) URI() string { return t.uri }

// Version returns the ontology version the table was derived from.
func (t *Table) Version() string { return t.version }

// Params returns the subdivision constants used.
func (t *Table) Params() Params { return t.params }

// NumConcepts returns the number of encoded canonical concepts.
func (t *Table) NumConcepts() int { return len(t.codes) }

// Code returns the code of the named class.
func (t *Table) Code(name string) (Code, bool) {
	i, ok := t.names[name]
	if !ok {
		return Code{}, false
	}
	return t.codes[i], true
}

// Subsumes reports whether class a subsumes class b, by numeric interval
// comparison only. Unknown names never subsume anything.
//
//sdp:hotpath
func (t *Table) Subsumes(a, b string) bool {
	ai, ok := t.names[a]
	if !ok {
		return false
	}
	bi, ok := t.names[b]
	if !ok {
		return false
	}
	if ai == bi {
		return true
	}
	return t.codes[ai].Subsumes(t.codes[bi])
}

// Distance implements the paper's d(a, b): the number of hierarchy levels
// separating a from b when a subsumes b (0 if equivalent), with ok=false
// (the paper's NULL) otherwise. Subsumption itself is established by the
// numeric codes; the level count is read from the table precomputed at
// encoding time, so no reasoner runs at match time.
//
//sdp:hotpath
func (t *Table) Distance(a, b string) (int, bool) {
	ai, ok := t.names[a]
	if !ok {
		return 0, false
	}
	bi, ok := t.names[b]
	if !ok {
		return 0, false
	}
	if ai == bi {
		return 0, true
	}
	if !t.codes[ai].Subsumes(t.codes[bi]) {
		return 0, false
	}
	d, ok := t.ancestors[bi][ai]
	if !ok {
		// The codes said subsumption holds but the closure disagrees; this
		// indicates table corruption and must not silently report a match.
		return 0, false
	}
	return d, true
}

// Stats summarizes encoding health: how deep the hierarchy goes and how
// narrow the narrowest interval is (when widths approach the double's
// precision floor, the encoding must be re-parameterized).
type Stats struct {
	Concepts  int
	MaxDepth  int
	MinWidth  float64
	MaxCovers int
}

// Stats computes encoding statistics for diagnostics and capacity planning.
func (t *Table) Stats() Stats {
	s := Stats{Concepts: len(t.codes), MinWidth: math.Inf(1)}
	for i, c := range t.codes {
		if t.depth[i] > s.MaxDepth {
			s.MaxDepth = t.depth[i]
		}
		if w := c.Primary.Width(); w < s.MinWidth {
			s.MinWidth = w
		}
		if len(c.Covers) > s.MaxCovers {
			s.MaxCovers = len(c.Covers)
		}
	}
	if len(t.codes) == 0 {
		s.MinWidth = 0
	}
	return s
}

// Registry resolves ontology URIs to code tables and enforces the version
// consistency rule: a lookup with a version other than the registered
// table's fails with ErrVersionMismatch. Registries are populated during
// directory bootstrap (offline) and read concurrently afterwards; Register
// must not race with Resolve.
type Registry struct {
	tables map[string]*Table
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]*Table)}
}

// Register adds or replaces the table for its ontology URI.
func (r *Registry) Register(t *Table) {
	r.tables[t.uri] = t
}

// Resolve returns the table for an ontology URI.
func (r *Registry) Resolve(uri string) (*Table, bool) {
	t, ok := r.tables[uri]
	return t, ok
}

// ResolveVersion returns the table for the URI only if its version matches.
func (r *Registry) ResolveVersion(uri, version string) (*Table, error) {
	t, ok := r.tables[uri]
	if !ok {
		return nil, fmt.Errorf("%w: no table for ontology %q", ErrUnknownConcept, uri)
	}
	if t.version != version {
		return nil, fmt.Errorf("%w: ontology %q has version %q, codes carry %q", ErrVersionMismatch, uri, t.version, version)
	}
	return t, nil
}

// URIs returns the registered ontology URIs in sorted order.
func (r *Registry) URIs() []string {
	out := make([]string, 0, len(r.tables))
	for u := range r.tables {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered tables.
func (r *Registry) Len() int { return len(r.tables) }
