package codes

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Serialization of code tables. The paper's Section 3.2 assumes that
// "service advertisements and service requests already contain the codes":
// devices obtain encoded tables from whoever performed the offline
// classification instead of running a reasoner themselves. MarshalTable /
// UnmarshalTable give tables a wire form for exactly that distribution
// (cmd/sdpd could ship them to thin clients; tests ship them across
// "devices").

// tableDTO is the wire form of a Table.
type tableDTO struct {
	URI     string         `json:"uri"`
	Version string         `json:"version"`
	P       int            `json:"p"`
	K       int            `json:"k"`
	Members [][]string     `json:"members"` // class names per concept index
	Primary [][2]float64   `json:"primary"`
	Covers  [][][2]float64 `json:"covers"`
	Depth   []int          `json:"depth"`
	// Ancestors[i] lists (ancestor index, hops) pairs for concept i.
	Ancestors [][][2]int `json:"ancestors"`
}

// MarshalTable serializes a table.
func MarshalTable(t *Table) ([]byte, error) {
	n := len(t.codes)
	dto := tableDTO{
		URI:       t.uri,
		Version:   t.version,
		P:         t.params.P,
		K:         t.params.K,
		Members:   make([][]string, n),
		Primary:   make([][2]float64, n),
		Covers:    make([][][2]float64, n),
		Depth:     append([]int(nil), t.depth...),
		Ancestors: make([][][2]int, n),
	}
	for name, idx := range t.names {
		dto.Members[idx] = append(dto.Members[idx], name)
	}
	for i := range dto.Members {
		sort.Strings(dto.Members[i])
	}
	for i, c := range t.codes {
		dto.Primary[i] = [2]float64{c.Primary.Lo, c.Primary.Hi}
		for _, iv := range c.Covers {
			dto.Covers[i] = append(dto.Covers[i], [2]float64{iv.Lo, iv.Hi})
		}
		pairs := make([][2]int, 0, len(t.ancestors[i]))
		for a, d := range t.ancestors[i] {
			pairs = append(pairs, [2]int{a, d})
		}
		sort.Slice(pairs, func(x, y int) bool { return pairs[x][0] < pairs[y][0] })
		dto.Ancestors[i] = pairs
	}
	return json.Marshal(dto)
}

// UnmarshalTable deserializes a table produced by MarshalTable.
func UnmarshalTable(data []byte) (*Table, error) {
	var dto tableDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("codes: unmarshal table: %w", err)
	}
	params := Params{P: dto.P, K: dto.K}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(dto.Members)
	if len(dto.Primary) != n || len(dto.Covers) != n || len(dto.Depth) != n || len(dto.Ancestors) != n {
		return nil, fmt.Errorf("codes: inconsistent table payload (%d/%d/%d/%d/%d)",
			n, len(dto.Primary), len(dto.Covers), len(dto.Depth), len(dto.Ancestors))
	}
	t := &Table{
		uri:       dto.URI,
		version:   dto.Version,
		params:    params,
		names:     make(map[string]int),
		codes:     make([]Code, n),
		depth:     append([]int(nil), dto.Depth...),
		ancestors: make([]map[int]int, n),
	}
	for i := 0; i < n; i++ {
		if len(dto.Members[i]) == 0 {
			return nil, fmt.Errorf("codes: concept %d has no member names", i)
		}
		for _, name := range dto.Members[i] {
			if _, dup := t.names[name]; dup {
				return nil, fmt.Errorf("codes: class %q appears in two concepts", name)
			}
			t.names[name] = i
		}
		t.codes[i].Primary = Interval{Lo: dto.Primary[i][0], Hi: dto.Primary[i][1]}
		if t.codes[i].Primary.Lo >= t.codes[i].Primary.Hi {
			return nil, fmt.Errorf("codes: concept %d has empty primary interval", i)
		}
		for _, iv := range dto.Covers[i] {
			t.codes[i].Covers = append(t.codes[i].Covers, Interval{Lo: iv[0], Hi: iv[1]})
		}
		if len(t.codes[i].Covers) == 0 {
			return nil, fmt.Errorf("codes: concept %d has no covers", i)
		}
		t.ancestors[i] = make(map[int]int, len(dto.Ancestors[i]))
		for _, pair := range dto.Ancestors[i] {
			if pair[0] < 0 || pair[0] >= n {
				return nil, fmt.Errorf("codes: concept %d has ancestor index %d out of range", i, pair[0])
			}
			t.ancestors[i][pair[0]] = pair[1]
		}
	}
	return t, nil
}
