// Command soaksmoke is the CI miniature of an overnight soak behind
// `make soak-smoke`: it builds sdpd and sdpctl, boots three daemons
// federated over loopback with 500ms telemetry sampling, per-daemon
// durable journals and a 1s drift watchdog, drives real traffic across
// the backbone, and asserts the whole soak-horizon pipeline in under
// ninety seconds:
//
//   - healthy federation: every watchdog sweeps repeatedly and GET
//     /alerts stays silent on all three daemons (no active, no fired),
//     and `sdpctl alerts` exits 0;
//   - durable history: one daemon restarts onto the same journal
//     directory and GET /timeseries still serves the pre-restart
//     samples (source "journal");
//   - injected drift: the restarted daemon comes back with
//     -chaos-leak-goroutines, and goroutine_growth must fire on GET
//     /alerts and flip `sdpctl alerts` to exit 1 while the two healthy
//     daemons stay silent.
//
// A 90-second run sees boot transients that hours of real soak average
// out, so the smoke passes detector thresholds sitting well above any
// boot wobble but far below the injected leak — silence stays
// meaningful and the drill still fires.
//
// Usage:
//
//	go run ./cmd/soaksmoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"time"
)

const smokeDeadline = 85 * time.Second

// leakPerSec is the injected goroutine leak: 150/s = 9000/min, fifteen
// times the smoke's growth threshold, so detection is never marginal.
const leakPerSec = 150

var ontologies = []string{
	"internal/profile/testdata/media-ontology.xml",
	"internal/profile/testdata/servers-ontology.xml",
}

// soakFlags tune every daemon for a compressed soak: fast sampling, a
// short watch window so the leak dominates it quickly, and thresholds
// above boot transients (a daemon gains a dozen goroutines and doubles
// a tiny heap while starting up; neither is drift).
var soakFlags = []string{
	"-sample-every", "500ms",
	"-watch-every", "1s",
	"-watch-window", "20s",
	"-watch-goroutine-growth", "600", // 10/s; the injected leak is 150/s
	"-watch-heap-growth-bytes", "268435456", // 256 MiB/min
	"-watch-flap-per-min", "600", // boot/restart elections are not flap
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "soaksmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("soaksmoke: ok")
}

// request and response mirror the sdpd client protocol: one JSON
// datagram each way.
type request struct {
	Op  string `json:"op"`
	Doc string `json:"doc,omitempty"`
}

type response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Hits  []struct {
		Service string `json:"service"`
	} `json:"hits,omitempty"`
	Peers []struct {
		Entries    int  `json:"entries"`
		HasSummary bool `json:"has_summary"`
	} `json:"peers,omitempty"`
}

// alertsView mirrors sdpd's GET /alerts reply.
type alertsView struct {
	Watching bool        `json:"watching"`
	Active   []alertLine `json:"active"`
	Fired    []alertLine `json:"fired"`
}

type alertLine struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Evidence string `json:"evidence"`
}

// timeseriesView is the slice of GET /timeseries the smoke reads.
type timeseriesView struct {
	Samples int    `json:"samples"`
	Source  string `json:"source"`
}

// daemon is one booted sdpd process; args are kept so a restart rebinds
// the same addresses and journal directory.
type daemon struct {
	name       string
	clientAddr string
	fedAddr    string
	httpAddr   string
	bin        string
	args       []string
	cmd        *exec.Cmd
}

func run() error {
	tmp, err := os.MkdirTemp("", "soaksmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	sdpd := filepath.Join(tmp, "sdpd")
	sdpctl := filepath.Join(tmp, "sdpctl")
	for bin, pkg := range map[string]string{sdpd: "./cmd/sdpd", sdpctl: "./cmd/sdpctl"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stdout, build.Stderr = os.Stderr, os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", pkg, err)
		}
	}

	deadline := time.Now().Add(smokeDeadline)

	// Three daemons on loopback, each with its own durable journal.
	a, err := boot(sdpd, tmp, "a")
	if err != nil {
		return err
	}
	defer a.stop()
	b, err := boot(sdpd, tmp, "b", a.fedAddr)
	if err != nil {
		return err
	}
	defer b.stop()
	c, err := boot(sdpd, tmp, "c", a.fedAddr, b.fedAddr)
	if err != nil {
		return err
	}
	defer c.stop()
	all := []*daemon{a, b, c}
	for _, d := range all {
		if err := d.awaitUp(deadline); err != nil {
			return err
		}
	}

	// Real traffic so the watchdog sweeps a live system, not an idle
	// one: register on B, resolve from C across the backbone.
	doc, err := os.ReadFile("internal/profile/testdata/media-center.xml")
	if err != nil {
		return err
	}
	resp, err := send(b.clientAddr, request{Op: "register", Doc: string(doc)})
	if err != nil {
		return fmt.Errorf("register on %s: %w", b.name, err)
	}
	if !resp.OK {
		return fmt.Errorf("register on %s: %s", b.name, resp.Error)
	}
	if err := c.awaitSummary(deadline); err != nil {
		return err
	}
	req, err := os.ReadFile("internal/profile/testdata/tablet-request.xml")
	if err != nil {
		return err
	}
	resp, err = send(c.clientAddr, request{Op: "query", Doc: string(req)})
	if err != nil {
		return fmt.Errorf("query on %s: %w", c.name, err)
	}
	if !resp.OK || len(resp.Hits) == 0 {
		return fmt.Errorf("query on %s returned no hits (%s)", c.name, resp.Error)
	}

	// Healthy phase: every watchdog must have swept several times and
	// found nothing — fault-free soak minutes stay silent.
	for _, d := range all {
		if err := d.awaitSweeps(deadline, 5); err != nil {
			return err
		}
		if err := d.expectSilent(); err != nil {
			return err
		}
	}
	if err := runSdpctlAlerts(sdpctl, a, 0, "watchdog running"); err != nil {
		return err
	}

	// Durable history: remember how much B has journaled, kill it, and
	// reboot it on the same addresses and journal directory — with the
	// goroutine leak injected. The pre-restart samples must still serve.
	pre, err := b.timeseries()
	if err != nil {
		return err
	}
	if pre.Source != "journal" || pre.Samples < 4 {
		return fmt.Errorf("daemon %s journaled %d samples from %q before restart; want >=4 from the journal",
			b.name, pre.Samples, pre.Source)
	}
	b.stop()
	if err := b.start("-chaos-leak-goroutines", strconv.Itoa(leakPerSec)); err != nil {
		return err
	}
	if err := b.awaitUp(deadline); err != nil {
		return err
	}
	post, err := b.timeseries()
	if err != nil {
		return err
	}
	if post.Source != "journal" || post.Samples < pre.Samples {
		return fmt.Errorf("daemon %s serves %d samples from %q after restart; want >=%d from the journal (history lost)",
			b.name, post.Samples, post.Source, pre.Samples)
	}

	// Injected drift: the leak must fire goroutine_growth on B while the
	// healthy daemons stay silent.
	if err := b.awaitAlert(deadline, "goroutine_growth"); err != nil {
		return err
	}
	if err := runSdpctlAlerts(sdpctl, b, 1, "goroutine_growth"); err != nil {
		return err
	}
	for _, d := range []*daemon{a, c} {
		if err := d.expectSilent(); err != nil {
			return fmt.Errorf("healthy daemon alarmed by %s's leak: %w", b.name, err)
		}
	}
	return nil
}

// boot assembles one daemon's full flag set and starts it.
func boot(bin, tmp, name string, peers ...string) (*daemon, error) {
	d := &daemon{name: name, bin: bin}
	var err error
	if d.clientAddr, err = freePort(); err != nil {
		return nil, err
	}
	if d.fedAddr, err = freePort(); err != nil {
		return nil, err
	}
	if d.httpAddr, err = freePort(); err != nil {
		return nil, err
	}
	d.args = []string{
		"-listen", d.clientAddr,
		"-federate", d.fedAddr,
		"-http", d.httpAddr,
		"-telemetry-journal", filepath.Join(tmp, "tj-"+name),
	}
	d.args = append(d.args, soakFlags...)
	for _, o := range ontologies {
		d.args = append(d.args, "-ontology", o)
	}
	for _, p := range peers {
		d.args = append(d.args, "-peer", p)
	}
	if err := d.start(); err != nil {
		return nil, err
	}
	return d, nil
}

// start launches (or relaunches) the daemon; extra appends one-off flags
// such as the restart's fault injection.
func (d *daemon) start(extra ...string) error {
	d.cmd = exec.Command(d.bin, append(append([]string(nil), d.args...), extra...)...)
	d.cmd.Stdout, d.cmd.Stderr = os.Stderr, os.Stderr
	if err := d.cmd.Start(); err != nil {
		return fmt.Errorf("start sdpd %s: %w", d.name, err)
	}
	return nil
}

func (d *daemon) stop() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
}

// awaitUp polls the client port until the daemon answers a stats op.
func (d *daemon) awaitUp(deadline time.Time) error {
	for {
		if resp, err := send(d.clientAddr, request{Op: "stats"}); err == nil && resp.OK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon %s never answered on %s", d.name, d.clientAddr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// awaitSummary polls the peers op until some backbone peer advertises a
// summary with entries.
func (d *daemon) awaitSummary(deadline time.Time) error {
	for {
		resp, err := send(d.clientAddr, request{Op: "peers"})
		if err == nil && resp.OK {
			for _, p := range resp.Peers {
				if p.HasSummary && p.Entries > 0 {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon %s never saw a peer summary", d.name)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

var sweepLine = regexp.MustCompile(`(?m)^alert_watchdog_sweeps_total ([0-9.eE+]+)$`)

// awaitSweeps polls /metrics until the watchdog has swept at least n
// times: silence only counts after the detectors actually looked.
func (d *daemon) awaitSweeps(deadline time.Time, n float64) error {
	for {
		body, err := d.get("/metrics")
		if err == nil {
			if m := sweepLine.FindStringSubmatch(string(body)); m != nil {
				if v, err := strconv.ParseFloat(m[1], 64); err == nil && v >= n {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon %s never reached %v watchdog sweeps", d.name, n)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// alerts fetches and decodes GET /alerts.
func (d *daemon) alerts() (alertsView, error) {
	var v alertsView
	body, err := d.get("/alerts")
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return v, fmt.Errorf("daemon %s: malformed /alerts: %w", d.name, err)
	}
	return v, nil
}

// expectSilent fails unless the daemon is watching and has never fired.
func (d *daemon) expectSilent() error {
	v, err := d.alerts()
	if err != nil {
		return err
	}
	if !v.Watching {
		return fmt.Errorf("daemon %s reports no watchdog", d.name)
	}
	if len(v.Active) > 0 || len(v.Fired) > 0 {
		return fmt.Errorf("daemon %s is not silent: %d active, %d fired (first: %+v)",
			d.name, len(v.Active), len(v.Fired), firstAlert(v))
	}
	return nil
}

// awaitAlert polls /alerts until code shows up active or fired.
func (d *daemon) awaitAlert(deadline time.Time, code string) error {
	for {
		v, err := d.alerts()
		if err == nil {
			for _, a := range append(v.Active, v.Fired...) {
				if a.Code == code {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon %s never fired %s (last view: %d active, %d fired)",
				d.name, code, len(v.Active), len(v.Fired))
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func firstAlert(v alertsView) alertLine {
	if len(v.Active) > 0 {
		return v.Active[0]
	}
	if len(v.Fired) > 0 {
		return v.Fired[0]
	}
	return alertLine{}
}

// timeseries fetches the sample count and source behind GET /timeseries.
func (d *daemon) timeseries() (timeseriesView, error) {
	var v timeseriesView
	body, err := d.get("/timeseries")
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return v, fmt.Errorf("daemon %s: malformed /timeseries: %w", d.name, err)
	}
	return v, nil
}

// get fetches one gateway path, insisting on a 200.
func (d *daemon) get(path string) ([]byte, error) {
	resp, err := http.Get("http://" + d.httpAddr + path)
	if err != nil {
		return nil, fmt.Errorf("daemon %s: GET %s: %w", d.name, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("daemon %s: GET %s: status %d", d.name, path, resp.StatusCode)
	}
	return body, nil
}

// runSdpctlAlerts runs `sdpctl alerts` against a daemon and checks both
// the exit code (0 silent, 1 alerting — script semantics) and that the
// output mentions want.
func runSdpctlAlerts(bin string, d *daemon, wantExit int, want string) error {
	cmd := exec.Command(bin, "alerts", d.httpAddr)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	err := cmd.Run()
	exit := 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		return fmt.Errorf("sdpctl alerts %s: %w", d.name, err)
	}
	if exit != wantExit {
		return fmt.Errorf("sdpctl alerts on %s exited %d, want %d; output:\n%s", d.name, exit, wantExit, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte(want)) {
		return fmt.Errorf("sdpctl alerts on %s did not mention %q; output:\n%s", d.name, want, out.String())
	}
	return nil
}

func send(server string, req request) (*response, error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(data); err != nil {
		return nil, err
	}
	buf := make([]byte, 256*1024)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("waiting for reply: %w", err)
	}
	var resp response
	if err := json.Unmarshal(buf[:n], &resp); err != nil {
		return nil, fmt.Errorf("malformed reply: %w", err)
	}
	return &resp, nil
}

// freePort reserves a loopback port by binding and releasing it.
func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}
