package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// benchPoint is one measured point of a figure's series in the
// machine-readable BENCH_*.json output: per-op throughput plus latency
// percentiles over the individual repetitions at that directory size.
type benchPoint struct {
	Services  int     `json:"services"`
	Series    string  `json:"series"`
	Reps      int     `json:"reps"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	P999Nanos int64   `json:"p999_ns"`
}

// fig9Points and fig10Points accumulate the series as the figures run;
// main writes them out when -benchjson is set.
var (
	fig9Points  []benchPoint
	fig10Points []benchPoint
)

// sampleIt runs f reps times and returns each repetition's duration, so
// callers can derive both the average the text tables print and the
// percentiles the JSON emission records.
func sampleIt(reps int, f func()) []time.Duration {
	samples := make([]time.Duration, reps)
	for i := range samples {
		start := time.Now()
		f()
		samples[i] = time.Since(start)
	}
	return samples
}

// mean returns the average of samples.
func mean(samples []time.Duration) time.Duration {
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	return total / time.Duration(len(samples))
}

// percentile returns the q-quantile (0 < q <= 1) of sorted by nearest
// rank.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// point summarizes one series at one directory size.
func point(services int, series string, samples []time.Duration) benchPoint {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	avg := mean(samples)
	ops := 0.0
	if avg > 0 {
		ops = float64(time.Second) / float64(avg)
	}
	return benchPoint{
		Services:  services,
		Series:    series,
		Reps:      len(samples),
		OpsPerSec: ops,
		P50Nanos:  int64(percentile(sorted, 0.50)),
		P95Nanos:  int64(percentile(sorted, 0.95)),
		P99Nanos:  int64(percentile(sorted, 0.99)),
		P999Nanos: int64(percentile(sorted, 0.999)),
	}
}

// writeBenchJSON writes one figure's series to path.
func writeBenchJSON(path string, points []benchPoint) error {
	if points == nil {
		points = []benchPoint{}
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d points)\n", path, len(points))
	return nil
}
