package main

import (
	"fmt"
	"log"
	"math/rand"

	"sariadne/internal/bloom"
	"sariadne/internal/gen"
)

// bloomSweep measures the directory-summary false-positive rate across
// (m, k) configurations, against the analytic estimate — the parameter
// study behind Section 4's "these values can be chosen so that the
// probability of false positive is minimized". Keys are real capability
// ontology-set keys from a generated workload.
func bloomSweep(_, _, reps int) {
	w := gen.MustNewWorkload(gen.WorkloadConfig{Ontologies: 22, Services: 128, Seed: 42})
	keys := make(map[string]bool)
	for _, svc := range w.Services {
		for _, c := range svc.Provided {
			keys[c.OntologyKey()] = true
		}
	}
	members := make([]string, 0, len(keys))
	for k := range keys {
		members = append(members, k)
	}

	if reps < 1000 {
		reps = 10000
	}
	rng := rand.New(rand.NewSource(99))
	fmt.Printf("%-8s %-4s %10s %12s %12s\n", "bits", "k", "stored", "measured", "estimate")
	for _, m := range []int{256, 512, 1024, 2048} {
		for _, k := range []int{2, 4, 6, 8} {
			f, err := bloom.New(m, k)
			if err != nil {
				log.Fatal(err)
			}
			for _, key := range members {
				f.Add(key)
			}
			fp := 0
			for i := 0; i < reps; i++ {
				if f.Test(fmt.Sprintf("nonmember-%d-%d", rng.Int63(), i)) {
					fp++
				}
			}
			fmt.Printf("%-8d %-4d %10d %11.4f%% %11.4f%%\n",
				m, k, len(members),
				100*float64(fp)/float64(reps), 100*f.EstimateFPR())
		}
	}
}
