// Command benchfig regenerates the data series behind every measured
// figure of the paper's evaluation (Figures 2, 7, 8, 9 and 10), printing
// the same rows/series the paper plots. Absolute numbers differ from the
// paper's 2006 testbed; EXPERIMENTS.md records the shape comparison.
//
// Usage:
//
//	benchfig -fig 2          # one figure
//	benchfig -fig all        # everything
//	benchfig -fig 9 -max 200 -step 20 -reps 50
//	benchfig -fig 9 -benchjson   # also write BENCH_fig9.json
//
// With -benchjson, figures 9 and 10 additionally emit BENCH_fig9.json
// and BENCH_fig10.json in the working directory: one array of points,
// each carrying the directory size, series name (optimized /
// non-optimized for figure 9, ariadne / s-ariadne for figure 10),
// ops/sec, and p50/p95/p99/p999 latency in nanoseconds over the
// per-point repetitions.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sariadne/internal/ariadne"
	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/gen"
	"sariadne/internal/match"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/reasoner"
	"sariadne/internal/registry"
	"sariadne/internal/telemetry"
	"sariadne/internal/wsdl"
)

func main() {
	log.SetFlags(0)
	fig := flag.String("fig", "all", "figure to regenerate: 2, 7, 8, 9, 10, traffic, bloom or all")
	maxServices := flag.Int("max", 100, "largest directory size for figures 7-10")
	step := flag.Int("step", 20, "directory size step for figures 7-10")
	reps := flag.Int("reps", 25, "repetitions per measurement point")
	traceSample := flag.Int("trace-sample", 0,
		"trace every Nth query in -fig traffic (0 = discovery default of 64, negative disables; for overhead A/B runs)")
	benchJSON := flag.Bool("benchjson", false,
		"also write BENCH_fig9.json / BENCH_fig10.json (ops/sec + p50/p95/p99/p999 per size and series) for the figures that ran")
	soakPipeline := flag.Bool("soak-pipeline", false,
		"run the full soak-horizon pipeline (runtime collector sampler + drift watchdog) during the figures, for overhead A/B runs")
	flag.Parse()
	trafficTraceSample = *traceSample

	if *soakPipeline {
		// The same cadences sdpd's soak defaults use, feeding a MemLog so
		// the watchdog sweeps real windows; the delta against a plain run
		// is the pipeline's whole cost on the measured paths.
		ml := telemetry.NewMemLog(720)
		sampler := telemetry.StartSamplerConfig(telemetry.Default(), 500*time.Millisecond, 720,
			telemetry.SamplerConfig{
				Collect: telemetry.SampleRuntime,
				OnSample: func(s telemetry.Sample) {
					ml.Append(telemetry.JournalSample{Time: time.Now(), Metrics: s.Metrics})
				},
			})
		defer sampler.Stop()
		wd := telemetry.NewWatchdog(telemetry.WatchdogConfig{
			Log:       ml,
			Detectors: telemetry.StandardDetectors(telemetry.Thresholds{}),
			Interval:  time.Second,
		})
		wd.Start()
		defer wd.Stop()
	}

	run := func(name string, f func(int, int, int)) {
		fmt.Printf("==== Figure %s ====\n", name)
		f(*maxServices, *step, *reps)
		fmt.Println()
	}

	switch *fig {
	case "2":
		run("2", fig2)
	case "7":
		run("7", fig7)
	case "8":
		run("8", fig8)
	case "9":
		run("9", fig9)
	case "10":
		run("10", fig10)
	case "traffic":
		run("traffic (protocol-level, beyond the paper)", traffic)
	case "bloom":
		run("bloom (summary parameter sweep, Section 4)", bloomSweep)
	case "all":
		run("2", fig2)
		run("7", fig7)
		run("8", fig8)
		run("9", fig9)
		run("10", fig10)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if *benchJSON {
		if fig9Points != nil {
			if err := writeBenchJSON("BENCH_fig9.json", fig9Points); err != nil {
				log.Fatal(err)
			}
		}
		if fig10Points != nil {
			if err := writeBenchJSON("BENCH_fig10.json", fig10Points); err != nil {
				log.Fatal(err)
			}
		}
	}
	// End-of-run telemetry snapshot: how much parse/classify/match work
	// the figures above actually exercised.
	if err := telemetry.Default().WriteSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// timeIt returns the average duration of f over reps runs.
func timeIt(reps int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

func workload(services int) (*gen.Workload, *codes.Registry) {
	w := gen.MustNewWorkload(gen.WorkloadConfig{
		Ontologies:           22,
		Services:             services,
		InputsPerCapability:  5,
		OutputsPerCapability: 3,
		Seed:                 42,
	})
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}
	return w, reg
}

// fig2 prints the per-reasoner phase decomposition of one capability
// match: parse / load+classify / match / total, plus the share of
// load+classify (the paper reports 76–78%) and the encoded matcher's
// time for contrast.
func fig2(_, _, reps int) {
	ontDoc, err := ontology.Marshal(gen.Fig2Ontology())
	if err != nil {
		log.Fatal(err)
	}
	provided, requested := gen.Fig2Capabilities()
	providedDoc, err := profile.Marshal(&profile.Service{Name: "p", Provided: []*profile.Capability{provided}})
	if err != nil {
		log.Fatal(err)
	}
	requestedDoc, err := profile.Marshal(&profile.Service{Name: "r", Required: []*profile.Capability{requested}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %12s %14s %12s %12s %8s\n", "reasoner", "parse", "load+classify", "match", "total", "l+c %")
	for _, prof := range reasoner.Profiles() {
		parse := timeIt(reps, func() {
			if _, err := profile.Unmarshal(providedDoc); err != nil {
				log.Fatal(err)
			}
			if _, err := profile.Unmarshal(requestedDoc); err != nil {
				log.Fatal(err)
			}
		})
		loadClassify := timeIt(reps, func() {
			r, _ := reasoner.New(prof)
			if err := r.Load(bytes.NewReader(ontDoc)); err != nil {
				log.Fatal(err)
			}
			if _, err := r.Classify(); err != nil {
				log.Fatal(err)
			}
		})
		r, _ := reasoner.New(prof)
		if err := r.Load(bytes.NewReader(ontDoc)); err != nil {
			log.Fatal(err)
		}
		h, err := r.Classify()
		if err != nil {
			log.Fatal(err)
		}
		hm := match.NewHierarchyMatcher()
		hm.Add(gen.Fig2Ontology().URI, h)
		matchTime := timeIt(reps, func() {
			if !match.Match(hm, provided, requested) {
				log.Fatal("pair must match")
			}
		})
		total := parse + loadClassify + matchTime
		fmt.Printf("%-10s %12s %14s %12s %12s %7.1f%%\n",
			prof, parse, loadClassify, matchTime, total,
			100*float64(loadClassify)/float64(total))
	}

	reg := codes.NewRegistry()
	reg.Register(codes.MustEncode(ontology.MustClassify(gen.Fig2Ontology()), codes.DefaultParams))
	cm := match.NewCodeMatcher(reg)
	encoded := timeIt(reps, func() {
		if !match.Match(cm, provided, requested) {
			log.Fatal("pair must match")
		}
	})
	fmt.Printf("%-10s %12s %14s %12s %12s   (offline encoding, paper Section 3.2)\n",
		"encoded", "-", "-", encoded, encoded)
}

// fig7 prints the time to populate an empty directory: parse, graph
// creation, total — per directory size.
func fig7(maxServices, step, reps int) {
	fmt.Printf("%-10s %12s %14s %12s\n", "services", "parse", "create graphs", "total")
	for n := step; n <= maxServices; n += step {
		w, reg := workload(n)
		parse := timeIt(reps, func() {
			for _, doc := range w.ServiceDocs {
				if _, err := profile.Unmarshal(doc); err != nil {
					log.Fatal(err)
				}
			}
		})
		create := timeIt(reps, func() {
			dir := registry.NewDirectory(match.NewCodeMatcher(reg))
			for _, svc := range w.Services {
				if err := dir.Register(svc); err != nil {
					log.Fatal(err)
				}
			}
		})
		fmt.Printf("%-10d %12s %14s %12s\n", n, parse, create, parse+create)
	}
}

// fig8 prints the time to publish one new advertisement into an existing
// directory: parse, insert, total — per directory size.
func fig8(maxServices, step, reps int) {
	fmt.Printf("%-10s %12s %12s %12s\n", "services", "parse", "insert", "total")
	for n := step; n <= maxServices; n += step {
		w, reg := workload(n + 1)
		newDoc := w.ServiceDocs[n]
		parse := timeIt(reps, func() {
			if _, err := profile.Unmarshal(newDoc); err != nil {
				log.Fatal(err)
			}
		})
		dir := registry.NewDirectory(match.NewCodeMatcher(reg))
		for _, svc := range w.Services[:n] {
			if err := dir.Register(svc); err != nil {
				log.Fatal(err)
			}
		}
		base, err := profile.Unmarshal(newDoc)
		if err != nil {
			log.Fatal(err)
		}
		i := 0
		insert := timeIt(reps, func() {
			svc := base.Clone()
			svc.Name = fmt.Sprintf("new%d", i)
			i++
			if err := dir.Register(svc); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-10d %12s %12s %12s\n", n, parse, insert, parse+insert)
	}
}

// fig9 prints the time to resolve a request in the classified directory
// vs unclassified linear matching (request parse excluded, as in the
// paper).
func fig9(maxServices, step, reps int) {
	fmt.Printf("%-10s %14s %16s %10s %10s %10s\n",
		"services", "optimized", "non-optimized", "overhead", "ops(opt)", "ops(lin)")
	for n := step; n <= maxServices; n += step {
		w, reg := workload(n)
		m := match.NewCodeMatcher(reg)
		// Average over several distinct requests to smooth the variance a
		// single randomly specialized request would introduce.
		reqs := make([]*profile.Capability, 0, 8)
		for i := 0; i < 8; i++ {
			reqs = append(reqs, w.Request((n/8)*i%n, 1))
		}

		dag := registry.NewDirectory(m)
		flat := registry.NewLinearDirectory(m)
		for _, svc := range w.Services {
			if err := dag.Register(svc); err != nil {
				log.Fatal(err)
			}
			if err := flat.Register(svc); err != nil {
				log.Fatal(err)
			}
		}
		i := 0
		optSamples := sampleIt(reps, func() {
			if res := dag.Query(reqs[i%len(reqs)]); len(res) == 0 {
				log.Fatal("request must match")
			}
			i++
		})
		opt := mean(optSamples)
		i = 0
		opsBefore := dag.MatchOps()
		for j := 0; j < len(reqs); j++ {
			dag.Query(reqs[j])
		}
		opsOpt := float64(dag.MatchOps()-opsBefore) / float64(len(reqs))

		linSamples := sampleIt(reps, func() {
			if res := flat.Query(reqs[i%len(reqs)]); len(res) == 0 {
				log.Fatal("request must match")
			}
			i++
		})
		lin := mean(linSamples)
		opsBefore = flat.MatchOps()
		for j := 0; j < len(reqs); j++ {
			flat.Query(reqs[j])
		}
		opsLin := float64(flat.MatchOps()-opsBefore) / float64(len(reqs))

		fig9Points = append(fig9Points,
			point(n, "optimized", optSamples),
			point(n, "non-optimized", linSamples))
		fmt.Printf("%-10d %14s %16s %9.0f%% %10.1f %10.1f\n", n, opt, lin,
			100*(float64(lin)/float64(opt)-1), opsOpt, opsLin)
	}
}

// fig10 prints the directory response time of the syntactic Ariadne
// baseline vs S-Ariadne on the same services (document in, answer out).
func fig10(maxServices, step, reps int) {
	fmt.Printf("%-10s %14s %14s\n", "services", "ariadne", "s-ariadne")
	for n := step; n <= maxServices; n += step {
		w, reg := workload(n)

		syntactic := ariadne.NewBackend()
		for _, def := range w.Definitions {
			doc, err := wsdl.Marshal(def)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := syntactic.Register(doc); err != nil {
				log.Fatal(err)
			}
		}
		wsdlReq, err := wsdl.Marshal(w.WSDLRequest(n / 2))
		if err != nil {
			log.Fatal(err)
		}

		semantic := discovery.NewSemanticBackend(reg)
		for _, doc := range w.ServiceDocs {
			if _, err := semantic.Register(doc); err != nil {
				log.Fatal(err)
			}
		}
		semReq, err := profile.Marshal(&profile.Service{
			Name:     "request",
			Required: []*profile.Capability{w.Request(n/2, 1)},
		})
		if err != nil {
			log.Fatal(err)
		}

		ariadneSamples := sampleIt(reps, func() {
			hits, err := syntactic.Query(wsdlReq)
			if err != nil || len(hits) == 0 {
				log.Fatalf("ariadne query: hits=%v err=%v", hits, err)
			}
		})
		sariadneSamples := sampleIt(reps, func() {
			hits, err := semantic.Query(semReq)
			if err != nil || len(hits) == 0 {
				log.Fatalf("s-ariadne query: hits=%v err=%v", hits, err)
			}
		})
		fig10Points = append(fig10Points,
			point(n, "ariadne", ariadneSamples),
			point(n, "s-ariadne", sariadneSamples))
		fmt.Printf("%-10d %14s %14s\n", n, mean(ariadneSamples), mean(sariadneSamples))
	}
}
