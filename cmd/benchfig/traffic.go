package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/election"
	"sariadne/internal/gen"
	"sariadne/internal/profile"
	"sariadne/internal/simnet"
)

// traffic measures the full S-Ariadne protocol over the simulated MANET:
// a 5×5 grid with four static directories, services published from the
// corners, queries issued from every node — reporting end-to-end response
// time, message counts and Bloom-pruning effectiveness. This is the
// protocol-level complement to Figure 10's directory-local measurement.
// trafficTraceSample carries the -trace-sample flag into the protocol
// config, so the sampled-tracing overhead can be A/B measured by running
// the same traffic workload with the sampler on and off.
var trafficTraceSample int

func traffic(maxServices, step, reps int) {
	fmt.Printf("%-10s %14s %12s %12s %10s %10s\n",
		"services", "avg response", "unicasts", "broadcasts", "forwards", "pruned")
	for n := step; n <= maxServices; n += step {
		w := gen.MustNewWorkload(gen.WorkloadConfig{
			Ontologies:           22,
			Services:             n,
			InputsPerCapability:  5,
			OutputsPerCapability: 3,
			Seed:                 42,
		})
		reg, err := w.Registry(codes.DefaultParams)
		if err != nil {
			log.Fatal(err)
		}

		net := simnet.New(simnet.Config{Seed: 7})
		eps, err := simnet.BuildGrid(net, "n", 5, 5)
		if err != nil {
			log.Fatal(err)
		}
		cfg := discovery.Config{
			QueryTimeout:     500 * time.Millisecond,
			TickInterval:     2 * time.Millisecond,
			SummaryPushEvery: 1,
			AnnounceInterval: 50 * time.Millisecond,
			TraceSampleEvery: trafficTraceSample,
			Election: election.Config{
				AdvertiseInterval: 20 * time.Millisecond,
				AdvertiseTTL:      2,
				ElectionTimeout:   time.Hour, // static deployment below
			},
		}
		nodes := make([]*discovery.Node, len(eps))
		for i, ep := range eps {
			nodes[i] = discovery.NewNode(ep, discovery.NewSemanticBackend(reg), cfg)
			nodes[i].Start(context.Background())
		}
		// Directories at the four quadrant centers of the grid.
		for _, i := range []int{6, 8, 16, 18} {
			nodes[i].BecomeDirectory()
		}
		waitCond(5*time.Second, func() bool {
			for _, nd := range nodes {
				if _, ok := nd.DirectoryID(); !ok {
					return false
				}
			}
			return true
		})

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		publishers := []int{0, 4, 20, 24, 12}
		for i, doc := range w.ServiceDocs {
			if err := nodes[publishers[i%len(publishers)]].Publish(ctx, doc); err != nil {
				log.Fatalf("publish %d: %v", i, err)
			}
		}
		// Let summaries settle.
		time.Sleep(100 * time.Millisecond)

		statsBefore := net.Stats()
		var nodeBefore []discovery.Stats
		for _, nd := range nodes {
			nodeBefore = append(nodeBefore, nd.Stats())
		}

		var total time.Duration
		queries := 0
		for r := 0; r < reps; r++ {
			from := nodes[r%len(nodes)]
			reqDoc, err := profile.Marshal(&profile.Service{
				Name:     fmt.Sprintf("req%d", r),
				Required: []*profile.Capability{w.Request(r%n, 1)},
			})
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			hits, err := from.Discover(ctx, reqDoc)
			if err != nil {
				log.Fatalf("discover: %v", err)
			}
			if len(hits) > 0 {
				total += time.Since(start)
				queries++
			}
		}
		statsAfter := net.Stats()
		var forwards, pruned uint64
		for i, nd := range nodes {
			st := nd.Stats()
			forwards += st.ForwardsSent - nodeBefore[i].ForwardsSent
			pruned += st.ForwardsPruned - nodeBefore[i].ForwardsPruned
		}
		avg := time.Duration(0)
		if queries > 0 {
			avg = total / time.Duration(queries)
		}
		fmt.Printf("%-10d %14s %12d %12d %10d %10d\n",
			n, avg,
			statsAfter.UnicastsSent-statsBefore.UnicastsSent,
			statsAfter.BroadcastsSent-statsBefore.BroadcastsSent,
			forwards, pruned)

		cancel()
		for _, nd := range nodes {
			nd.Stop()
		}
		net.Close()
	}
}

func waitCond(timeout time.Duration, cond func() bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("benchfig: timeout waiting for protocol convergence")
}
