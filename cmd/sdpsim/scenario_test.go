package main

import (
	"strings"
	"testing"
)

const demoScenario = `{
  "seed": 7,
  "topology": {"kind": "grid", "rows": 3, "cols": 3},
  "election": {"advertiseIntervalMs": 15, "advertiseTTL": 3,
               "electionTimeoutMs": 50, "candidacyWaitMs": 20},
  "workload": {"ontologies": 5, "services": 10, "seed": 42},
  "events": [
    {"atMs": 300, "action": "publish", "node": "n0", "service": 0},
    {"atMs": 350, "action": "publish", "node": "n8", "service": 1},
    {"atMs": 450, "action": "query",   "node": "n4", "request": 0},
    {"atMs": 480, "action": "query",   "node": "n4", "request": 1},
    {"atMs": 520, "action": "report"}
  ]
}`

func TestParseScenario(t *testing.T) {
	sc, err := parseScenario([]byte(demoScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topology.Kind != "grid" || len(sc.Events) != 5 {
		t.Fatalf("parsed = %+v", sc)
	}
	// Events come back time-sorted even if declared out of order.
	scrambled := strings.Replace(demoScenario, `"atMs": 300, "action": "publish"`, `"atMs": 700, "action": "publish"`, 1)
	sc, err = parseScenario([]byte(scrambled))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sc.Events); i++ {
		if sc.Events[i-1].AtMs > sc.Events[i].AtMs {
			t.Fatal("events not sorted")
		}
	}
}

func TestParseScenarioErrors(t *testing.T) {
	bad := map[string]string{
		"garbage":        `nope`,
		"no topology":    `{"workload":{"services":1},"topology":{"kind":"blob"}}`,
		"grid no dims":   `{"workload":{"services":1},"topology":{"kind":"grid"}}`,
		"line no count":  `{"workload":{"services":1},"topology":{"kind":"line"}}`,
		"geo no radius":  `{"workload":{"services":1},"topology":{"kind":"geometric","count":5}}`,
		"no services":    `{"topology":{"kind":"line","count":3}}`,
		"unknown action": `{"workload":{"services":1},"topology":{"kind":"line","count":3},"events":[{"action":"dance"}]}`,
	}
	for name, doc := range bad {
		if _, err := parseScenario([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	sc, err := parseScenario([]byte(demoScenario))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runScenario(sc, nil, 1.0, &out); err != nil {
		t.Fatalf("runScenario: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"publish svc0000 @ n0: ok",
		"publish svc0001 @ n8: ok",
		"query req0 @ n4:",
		"-- report --",
		"traffic:",
		"queries:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "hit(s)") {
		t.Errorf("no query produced hits:\n%s", text)
	}
}

func TestRunScenarioChurn(t *testing.T) {
	churn := `{
	  "seed": 3,
	  "topology": {"kind": "line", "count": 4},
	  "election": {"advertiseIntervalMs": 15, "advertiseTTL": 4,
	               "electionTimeoutMs": 50, "candidacyWaitMs": 20},
	  "workload": {"ontologies": 3, "services": 4, "seed": 5},
	  "events": [
	    {"atMs": 50,  "action": "promote", "node": "n1"},
	    {"atMs": 250, "action": "publish", "node": "n0", "service": 0},
	    {"atMs": 300, "action": "unlink",  "a": "n2", "b": "n3"},
	    {"atMs": 350, "action": "link",    "a": "n2", "b": "n3"},
	    {"atMs": 400, "action": "kill",    "node": "n3"},
	    {"atMs": 500, "action": "query",   "node": "n2", "request": 0},
	    {"atMs": 530, "action": "report"}
	  ]
	}`
	sc, err := parseScenario([]byte(churn))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runScenario(sc, nil, 1.0, &out); err != nil {
		t.Fatalf("runScenario: %v\n%s", err, out.String())
	}
	for _, want := range []string{"promote n1", "unlink n2-n3", "link n2-n3", "kill n3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunScenarioBadEventTargets(t *testing.T) {
	base := `{
	  "topology": {"kind": "line", "count": 2},
	  "workload": {"ontologies": 2, "services": 2, "seed": 5},
	  "events": [%s]
	}`
	for name, event := range map[string]string{
		"unknown publish node": `{"action":"publish","node":"zz","service":0}`,
		"service out of range": `{"action":"publish","node":"n0","service":99}`,
		"unknown query node":   `{"action":"query","node":"zz","request":0}`,
		"unknown kill node":    `{"action":"kill","node":"zz"}`,
		"unknown link node":    `{"action":"link","a":"zz","b":"n0"}`,
		"unknown promote node": `{"action":"promote","node":"zz"}`,
	} {
		sc, err := parseScenario([]byte(strings.Replace(base, "%s", event, 1)))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		var out strings.Builder
		if err := runScenario(sc, nil, 0.1, &out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseFaultsErrors(t *testing.T) {
	bad := map[string]string{
		"garbage":         `nope`,
		"unnamed split":   `{"partitions":[{"groups":[["n0"],["n1"]]}]}`,
		"one-sided split": `{"partitions":[{"name":"x","groups":[["n0"]]}]}`,
		"link no ends":    `{"links":[{"drop":0.5}]}`,
		"link drop > 1":   `{"links":[{"from":"a","to":"b","drop":1.5}]}`,
		"burst drop zero": `{"bursts":[{"drop":0}]}`,
		"churn no node":   `{"churn":[{"downAtMs":10}]}`,
	}
	for name, doc := range bad {
		if _, err := parseFaults([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestRunScenarioFaultPlan arms a partition that isolates directory n2
// after the backbone has meshed: the query issued during the cut must be
// answered gracefully with a partial marker (n2 holds the only match),
// and the crash/restart events must narrate without touching topology.
func TestRunScenarioFaultPlan(t *testing.T) {
	sc, err := parseScenario([]byte(`{
	  "seed": 11,
	  "topology": {"kind": "star", "count": 3},
	  "election": {"advertiseIntervalMs": 15, "advertiseTTL": 4,
	               "electionTimeoutMs": 5000, "candidacyWaitMs": 20},
	  "workload": {"ontologies": 3, "services": 4, "seed": 5},
	  "events": [
	    {"atMs": 30,   "action": "promote", "node": "n0"},
	    {"atMs": 40,   "action": "promote", "node": "n2"},
	    {"atMs": 300,  "action": "publish", "node": "n2", "service": 0},
	    {"atMs": 1000, "action": "query",   "node": "n1", "request": 0},
	    {"atMs": 1100, "action": "crash",   "node": "n1"},
	    {"atMs": 1150, "action": "restart", "node": "n1"},
	    {"atMs": 1200, "action": "report"}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	faults, err := parseFaults([]byte(`{
	  "partitions": [{"name": "cut-n2", "groups": [["n0","n1"],["n2"]], "atMs": 900, "healMs": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runScenario(sc, faults, 1.0, &out); err != nil {
		t.Fatalf("runScenario: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"fault plan armed: 1 partition(s)",
		"publish svc0000 @ n2: ok",
		"[partial: 1 unreachable]",
		"crash n1",
		"restart n1",
		"faults: partition:cut-n2",
		"partition-blocked)",
		"1 partial",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
