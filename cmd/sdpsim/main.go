// Command sdpsim replays declarative protocol scenarios against the
// simulated pervasive network: a JSON file describes the topology, the
// workload and a timeline of events (publish, query, node failures, link
// churn), and sdpsim reports what discovery saw at each step plus final
// protocol statistics. It makes protocol experiments reproducible without
// writing Go.
//
// Usage:
//
//	sdpsim -scenario demo.json [-faults faults.json] [-timescale 1.0] [-seed 7]
//
// The optional -faults file is a scripted fault plan (partitions with
// heal times, per-link loss/latency overrides, loss bursts, node churn —
// see cmd/sdpsim/faults.go for the schema) armed when the timeline
// starts. Queries answered while coverage is degraded are narrated with
// a "[partial: N unreachable]" marker. Scenario events "crash" and
// "restart" toggle a node's process without removing it from the
// topology, unlike "kill" which deletes it for good.
//
// Scenario format (times in milliseconds from start):
//
//	{
//	  "seed": 7,
//	  "topology": {"kind": "grid", "rows": 4, "cols": 4},
//	  "dropRate": 0.05,
//	  "election": {"advertiseIntervalMs": 20, "advertiseTTL": 2,
//	               "electionTimeoutMs": 80, "candidacyWaitMs": 30},
//	  "workload": {"ontologies": 10, "services": 20, "seed": 42},
//	  "events": [
//	    {"atMs": 300,  "action": "publish", "node": "n0", "service": 0},
//	    {"atMs": 600,  "action": "query",   "node": "n15", "request": 0},
//	    {"atMs": 800,  "action": "kill",    "node": "n5"},
//	    {"atMs": 820,  "action": "crash",   "node": "n6"},
//	    {"atMs": 880,  "action": "restart", "node": "n6"},
//	    {"atMs": 900,  "action": "unlink",  "a": "n1", "b": "n2"},
//	    {"atMs": 1000, "action": "link",    "a": "n1", "b": "n2"},
//	    {"atMs": 1500, "action": "report"}
//	  ]
//	}
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"sariadne/internal/telemetry"
)

func main() {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (required)")
	faultsPath := flag.String("faults", "", "fault plan JSON file armed at scenario start (optional)")
	timescale := flag.Float64("timescale", 1.0, "multiply all event times (0.1 = 10x faster)")
	seed := flag.Int64("seed", 0, "override the scenario's network and workload seeds (0 = use scenario values)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()
	if *scenarioPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "sdpsim: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	logger := slog.With("component", "sim")
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	data, err := os.ReadFile(*scenarioPath)
	if err != nil {
		fatal("read scenario", err)
	}
	sc, err := parseScenario(data)
	if err != nil {
		fatal("parse scenario", err)
	}
	if *seed != 0 {
		// One flag pins every stochastic input, so a flaky run can be
		// replayed exactly regardless of what the scenario file says.
		sc.Seed = *seed
		sc.Workload.Seed = *seed
		// Trace IDs too: replayed runs mint the same IDs, so recorded
		// traces can be diffed across runs.
		telemetry.SetTraceIDEntropy(uint32(*seed))
	}
	var faults *faultsSpec
	if *faultsPath != "" {
		fdata, err := os.ReadFile(*faultsPath)
		if err != nil {
			fatal("read fault plan", err)
		}
		faults, err = parseFaults(fdata)
		if err != nil {
			fatal("parse fault plan", err)
		}
	}
	if err := runScenario(sc, faults, *timescale, os.Stdout); err != nil {
		fatal("run scenario", err)
	}
}
