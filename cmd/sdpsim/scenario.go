package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/election"
	"sariadne/internal/gen"
	"sariadne/internal/profile"
	"sariadne/internal/simnet"
	"sariadne/internal/telemetry"
)

// scenario is the parsed experiment description.
type scenario struct {
	Seed     int64        `json:"seed"`
	Topology topologySpec `json:"topology"`
	DropRate float64      `json:"dropRate"`
	Election electionSpec `json:"election"`
	Workload workloadSpec `json:"workload"`
	Events   []eventSpec  `json:"events"`
}

type topologySpec struct {
	Kind string `json:"kind"` // grid | line | ring | star | geometric
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	// Count and Radius apply to line/ring/star/geometric.
	Count  int     `json:"count"`
	Radius float64 `json:"radius"`
}

type electionSpec struct {
	AdvertiseIntervalMs int `json:"advertiseIntervalMs"`
	AdvertiseTTL        int `json:"advertiseTTL"`
	ElectionTimeoutMs   int `json:"electionTimeoutMs"`
	CandidacyWaitMs     int `json:"candidacyWaitMs"`
}

type workloadSpec struct {
	Ontologies int   `json:"ontologies"`
	Services   int   `json:"services"`
	Seed       int64 `json:"seed"`
}

type eventSpec struct {
	AtMs    int    `json:"atMs"`
	Action  string `json:"action"` // publish | query | kill | crash | restart | link | unlink | promote | report
	Node    string `json:"node"`
	Service int    `json:"service"`
	Request int    `json:"request"`
	Depth   int    `json:"depth"`
	A       string `json:"a"`
	B       string `json:"b"`
}

// parseScenario decodes and sanity-checks a scenario document.
func parseScenario(data []byte) (*scenario, error) {
	var sc scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	switch sc.Topology.Kind {
	case "grid":
		if sc.Topology.Rows <= 0 || sc.Topology.Cols <= 0 {
			return nil, fmt.Errorf("scenario: grid topology needs rows and cols")
		}
	case "line", "ring", "star":
		if sc.Topology.Count <= 0 {
			return nil, fmt.Errorf("scenario: %s topology needs count", sc.Topology.Kind)
		}
	case "geometric":
		if sc.Topology.Count <= 0 || sc.Topology.Radius <= 0 {
			return nil, fmt.Errorf("scenario: geometric topology needs count and radius")
		}
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", sc.Topology.Kind)
	}
	if sc.Workload.Services <= 0 {
		return nil, fmt.Errorf("scenario: workload.services must be positive")
	}
	valid := map[string]bool{"publish": true, "query": true, "kill": true,
		"crash": true, "restart": true,
		"link": true, "unlink": true, "promote": true, "report": true}
	for i, e := range sc.Events {
		if !valid[e.Action] {
			return nil, fmt.Errorf("scenario: event %d has unknown action %q", i, e.Action)
		}
	}
	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].AtMs < sc.Events[j].AtMs })
	return &sc, nil
}

// runScenario executes the timeline and writes the narration to w. A
// non-nil fault plan is armed the instant the timeline starts, so plan
// offsets and event stamps share one clock.
func runScenario(sc *scenario, faults *faultsSpec, timescale float64, w io.Writer) error {
	workload, err := gen.NewWorkload(gen.WorkloadConfig{
		Ontologies: sc.Workload.Ontologies,
		Services:   sc.Workload.Services,
		Seed:       sc.Workload.Seed,
	})
	if err != nil {
		return err
	}
	reg, err := workload.Registry(codes.DefaultParams)
	if err != nil {
		return err
	}

	net := simnet.New(simnet.Config{DropRate: sc.DropRate, Seed: sc.Seed})
	defer net.Close()
	var eps []*simnet.Endpoint
	switch sc.Topology.Kind {
	case "grid":
		eps, err = simnet.BuildGrid(net, "n", sc.Topology.Rows, sc.Topology.Cols)
	case "line":
		eps, err = simnet.BuildLine(net, "n", sc.Topology.Count)
	case "ring":
		eps, err = simnet.BuildRing(net, "n", sc.Topology.Count)
	case "star":
		eps, err = simnet.BuildStar(net, "n", sc.Topology.Count)
	case "geometric":
		eps, err = simnet.BuildGeometric(net, "n", sc.Topology.Count, sc.Topology.Radius, sc.Seed)
	}
	if err != nil {
		return err
	}

	ms := func(v, def int) time.Duration {
		if v <= 0 {
			v = def
		}
		return time.Duration(v) * time.Millisecond
	}
	cfg := discovery.Config{
		QueryTimeout:     time.Second,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		AnnounceInterval: 50 * time.Millisecond,
		Election: election.Config{
			AdvertiseInterval: ms(sc.Election.AdvertiseIntervalMs, 20),
			AdvertiseTTL:      max(sc.Election.AdvertiseTTL, 2),
			ElectionTimeout:   ms(sc.Election.ElectionTimeoutMs, 80),
			CandidacyWait:     ms(sc.Election.CandidacyWaitMs, 30),
		},
	}
	nodes := map[simnet.NodeID]*discovery.Node{}
	for _, ep := range eps {
		id := ep.ID()
		c := cfg
		c.Election.Score = func() election.Score {
			return election.Score{Coverage: len(net.Neighbors(id)), Resources: 0.5, Willing: true}
		}
		nodes[id] = discovery.NewNode(ep, discovery.NewSemanticBackend(reg), c)
		nodes[id].Start(context.Background())
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	fmt.Fprintf(w, "sdpsim: %d nodes (%s), %d services in workload, drop rate %.2f\n",
		len(eps), sc.Topology.Kind, sc.Workload.Services, sc.DropRate)

	if faults != nil {
		net.ApplyFaultPlan(faults.plan(timescale))
		fmt.Fprintf(w, "fault plan armed: %d partition(s), %d link fault(s), %d burst(s), %d churn entr(ies)\n",
			len(faults.Partitions), len(faults.Links), len(faults.Bursts), len(faults.Churn))
	}
	ctx := context.Background()
	start := time.Now()
	queriesOK, queriesEmpty, queriesErr, queriesPartial := 0, 0, 0, 0
	for _, e := range sc.Events {
		due := time.Duration(float64(e.AtMs)*timescale) * time.Millisecond
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		stamp := time.Since(start).Round(time.Millisecond)
		switch e.Action {
		case "publish":
			node, ok := nodes[simnet.NodeID(e.Node)]
			if !ok {
				return fmt.Errorf("publish: unknown node %q", e.Node)
			}
			if e.Service < 0 || e.Service >= len(workload.ServiceDocs) {
				return fmt.Errorf("publish: service index %d out of range", e.Service)
			}
			pctx, cancel := context.WithTimeout(ctx, time.Second)
			err := node.Publish(pctx, workload.ServiceDocs[e.Service])
			cancel()
			if err != nil {
				fmt.Fprintf(w, "[%7s] publish svc%04d @ %s: FAILED (%v)\n", stamp, e.Service, e.Node, err)
			} else {
				fmt.Fprintf(w, "[%7s] publish svc%04d @ %s: ok\n", stamp, e.Service, e.Node)
			}
		case "query":
			node, ok := nodes[simnet.NodeID(e.Node)]
			if !ok {
				return fmt.Errorf("query: unknown node %q", e.Node)
			}
			if e.Request < 0 || e.Request >= len(workload.Services) {
				return fmt.Errorf("query: request index %d out of range", e.Request)
			}
			doc, err := profile.Marshal(&profile.Service{
				Name:     fmt.Sprintf("query-%s-%d", e.Node, e.Request),
				Required: []*profile.Capability{workload.Request(e.Request, e.Depth)},
			})
			if err != nil {
				return err
			}
			qctx, cancel := context.WithTimeout(ctx, time.Second)
			res, err := node.DiscoverResult(qctx, doc)
			cancel()
			// A partial answer is still an answer; the marker tells the
			// reader which directories the retry machinery gave up on.
			marker := ""
			if err == nil && res.Partial() {
				queriesPartial++
				marker = fmt.Sprintf(" [partial: %d unreachable]", len(res.Unreachable))
			}
			switch {
			case err != nil:
				queriesErr++
				fmt.Fprintf(w, "[%7s] query req%d @ %s: error (%v)\n", stamp, e.Request, e.Node, err)
			case len(res.Hits) == 0:
				queriesEmpty++
				fmt.Fprintf(w, "[%7s] query req%d @ %s: no match%s\n", stamp, e.Request, e.Node, marker)
			default:
				queriesOK++
				best := res.Hits[0]
				fmt.Fprintf(w, "[%7s] query req%d @ %s: %d hit(s), best %s/%s d=%d via %s%s\n",
					stamp, e.Request, e.Node, len(res.Hits), best.Service, best.Capability, best.Distance, best.Directory, marker)
			}
		case "kill":
			id := simnet.NodeID(e.Node)
			node, ok := nodes[id]
			if !ok {
				return fmt.Errorf("kill: unknown node %q", e.Node)
			}
			node.Stop()
			delete(nodes, id)
			net.RemoveNode(id)
			fmt.Fprintf(w, "[%7s] kill %s\n", stamp, e.Node)
		case "crash":
			// Unlike kill, a crash keeps the node's identity and links: it
			// just stops moving traffic until a matching restart, modeling a
			// process crash (cached registrations at survivors stay valid).
			id := simnet.NodeID(e.Node)
			if _, ok := nodes[id]; !ok {
				return fmt.Errorf("crash: unknown node %q", e.Node)
			}
			net.SetNodeDown(id, true)
			fmt.Fprintf(w, "[%7s] crash %s\n", stamp, e.Node)
		case "restart":
			id := simnet.NodeID(e.Node)
			if _, ok := nodes[id]; !ok {
				return fmt.Errorf("restart: unknown node %q", e.Node)
			}
			net.SetNodeDown(id, false)
			fmt.Fprintf(w, "[%7s] restart %s\n", stamp, e.Node)
		case "link":
			if err := net.Connect(simnet.NodeID(e.A), simnet.NodeID(e.B)); err != nil {
				return fmt.Errorf("link: %w", err)
			}
			fmt.Fprintf(w, "[%7s] link %s-%s\n", stamp, e.A, e.B)
		case "unlink":
			net.Disconnect(simnet.NodeID(e.A), simnet.NodeID(e.B))
			fmt.Fprintf(w, "[%7s] unlink %s-%s\n", stamp, e.A, e.B)
		case "promote":
			node, ok := nodes[simnet.NodeID(e.Node)]
			if !ok {
				return fmt.Errorf("promote: unknown node %q", e.Node)
			}
			node.BecomeDirectory()
			fmt.Fprintf(w, "[%7s] promote %s to directory\n", stamp, e.Node)
		case "report":
			writeReport(w, stamp, net, nodes)
		}
	}
	fmt.Fprintf(w, "\nqueries: %d answered, %d empty, %d failed, %d partial\n",
		queriesOK, queriesEmpty, queriesErr, queriesPartial)
	// End-of-run telemetry: the same registry snapshot sdpd serves on
	// /metrics, so simulated and deployed runs are compared one-to-one.
	return telemetry.Default().WriteSummary(w)
}

// writeReport prints the protocol state: directories, per-node stats,
// traffic counters.
func writeReport(w io.Writer, stamp time.Duration, net *simnet.Network, nodes map[simnet.NodeID]*discovery.Node) {
	ids := make([]simnet.NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(w, "[%7s] -- report --\n", stamp)
	for _, id := range ids {
		n := nodes[id]
		if n.Role() != election.Directory {
			continue
		}
		st := n.Stats()
		fmt.Fprintf(w, "  directory %s: %d registrations, %d queries served, %d forwarded, %d pruned\n",
			id, st.Registrations, st.QueriesServed, st.QueriesForwarded, st.ForwardsPruned)
	}
	if af := net.ActiveFaults(); len(af) > 0 {
		fmt.Fprintf(w, "  faults: %s\n", strings.Join(af, " "))
	}
	netStats := net.Stats()
	fmt.Fprintf(w, "  traffic: %d unicasts, %d broadcasts, %d delivered, %d dropped (%d by faults, %d partition-blocked)\n",
		netStats.UnicastsSent, netStats.BroadcastsSent, netStats.MessagesDelivered,
		netStats.MessagesDropped, netStats.FaultDrops, netStats.PartitionBlocks)
}
