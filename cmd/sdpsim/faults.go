package main

import (
	"encoding/json"
	"fmt"
	"time"

	"sariadne/internal/simnet"
)

// faultsSpec is the JSON authoring format for a simnet.FaultPlan, loaded
// with -faults and armed when the scenario timeline starts. Times are
// milliseconds from scenario start; a zero heal/until/up time means the
// condition never clears:
//
//	{
//	  "partitions": [{"name": "split", "groups": [["n0","n1"],["n2"]],
//	                  "atMs": 0, "healMs": 800}],
//	  "links":      [{"from": "n1", "to": "n2", "drop": 0.5,
//	                  "extraLatencyMs": 5, "atMs": 0, "untilMs": 0}],
//	  "bursts":     [{"drop": 0.3, "atMs": 100, "untilMs": 600}],
//	  "churn":      [{"node": "n3", "downAtMs": 200, "upAtMs": 700}]
//	}
type faultsSpec struct {
	Partitions []partitionSpec `json:"partitions"`
	Links      []linkFaultSpec `json:"links"`
	Bursts     []burstSpec     `json:"bursts"`
	Churn      []churnSpec     `json:"churn"`
}

type partitionSpec struct {
	Name   string     `json:"name"`
	Groups [][]string `json:"groups"`
	AtMs   int        `json:"atMs"`
	HealMs int        `json:"healMs"`
}

type linkFaultSpec struct {
	From           string  `json:"from"`
	To             string  `json:"to"`
	Drop           float64 `json:"drop"`
	ExtraLatencyMs int     `json:"extraLatencyMs"`
	AtMs           int     `json:"atMs"`
	UntilMs        int     `json:"untilMs"`
}

type burstSpec struct {
	Drop    float64 `json:"drop"`
	AtMs    int     `json:"atMs"`
	UntilMs int     `json:"untilMs"`
}

type churnSpec struct {
	Node     string `json:"node"`
	DownAtMs int    `json:"downAtMs"`
	UpAtMs   int    `json:"upAtMs"`
}

// parseFaults decodes and sanity-checks a fault plan document.
func parseFaults(data []byte) (*faultsSpec, error) {
	var f faultsSpec
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("fault plan: %w", err)
	}
	for i, p := range f.Partitions {
		if p.Name == "" {
			return nil, fmt.Errorf("fault plan: partition %d has no name", i)
		}
		if len(p.Groups) < 2 {
			return nil, fmt.Errorf("fault plan: partition %q needs at least two groups", p.Name)
		}
	}
	for i, l := range f.Links {
		if l.From == "" || l.To == "" {
			return nil, fmt.Errorf("fault plan: link fault %d needs from and to", i)
		}
		if l.Drop < 0 || l.Drop > 1 {
			return nil, fmt.Errorf("fault plan: link fault %d drop %v outside [0,1]", i, l.Drop)
		}
	}
	for i, b := range f.Bursts {
		if b.Drop <= 0 || b.Drop > 1 {
			return nil, fmt.Errorf("fault plan: burst %d drop %v outside (0,1]", i, b.Drop)
		}
	}
	for i, c := range f.Churn {
		if c.Node == "" {
			return nil, fmt.Errorf("fault plan: churn entry %d has no node", i)
		}
	}
	return &f, nil
}

// plan converts the spec to a simnet.FaultPlan, scaling every window by
// the same timescale the event timeline uses so faults and events stay
// aligned under -timescale.
func (f *faultsSpec) plan(timescale float64) simnet.FaultPlan {
	ms := func(v int) time.Duration {
		return time.Duration(float64(v)*timescale) * time.Millisecond
	}
	var p simnet.FaultPlan
	for _, ps := range f.Partitions {
		groups := make([][]simnet.NodeID, len(ps.Groups))
		for g, ids := range ps.Groups {
			for _, id := range ids {
				groups[g] = append(groups[g], simnet.NodeID(id))
			}
		}
		p.Partitions = append(p.Partitions, simnet.Partition{
			Name: ps.Name, Groups: groups, At: ms(ps.AtMs), Heal: ms(ps.HealMs),
		})
	}
	for _, ls := range f.Links {
		p.Links = append(p.Links, simnet.LinkFault{
			From: simnet.NodeID(ls.From), To: simnet.NodeID(ls.To),
			Drop: ls.Drop, ExtraLatency: ms(ls.ExtraLatencyMs),
			At: ms(ls.AtMs), Until: ms(ls.UntilMs),
		})
	}
	for _, bs := range f.Bursts {
		p.Bursts = append(p.Bursts, simnet.Burst{Drop: bs.Drop, At: ms(bs.AtMs), Until: ms(bs.UntilMs)})
	}
	for _, cs := range f.Churn {
		p.Churn = append(p.Churn, simnet.Churn{
			Node: simnet.NodeID(cs.Node), DownAt: ms(cs.DownAtMs), UpAt: ms(cs.UpAtMs),
		})
	}
	return p
}
