// Command sdplint is the repo's multichecker: it runs the standard `go
// vet` passes plus the ten codebase-specific analyzers from
// internal/analysis (lockcheck, goroutinecheck, detrand, sleeptest,
// metricnames, simnetimport, atomicmix, immutcheck, hotalloc, errdrop)
// over a set of package patterns.
//
// Usage:
//
//	go run ./cmd/sdplint ./...
//	go run ./cmd/sdplint -vet=false ./internal/discovery
//	go run ./cmd/sdplint -json ./...   # machine-readable findings
//
// With -json, findings from the project analyzers are written to stdout
// as one JSON array of {file, line, col, message, analyzer} objects —
// the format CI tooling and editors consume; human-readable lines go to
// CI logs via the default mode, which the checked-in GitHub problem
// matcher (.github/sdplint-problem-matcher.json) annotates onto PRs.
//
// Package metadata comes from `go list`, so patterns mean exactly what
// they mean to the go tool. Each package is analyzed three times when it
// has tests — the library files, the library+in-package-test unit, and
// the external _test package — with diagnostics deduplicated so library
// findings are reported once. Findings can be silenced, one line at a
// time, with an explanatory comment:
//
//	//sdplint:ignore <analyzer> <why this is safe>
//
// Exit status is 1 when any analyzer (or vet) reports a finding, so the
// command gates CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"sariadne/internal/analysis"
	"sariadne/internal/analysis/atomicmix"
	"sariadne/internal/analysis/detrand"
	"sariadne/internal/analysis/errdrop"
	"sariadne/internal/analysis/goroutinecheck"
	"sariadne/internal/analysis/hotalloc"
	"sariadne/internal/analysis/immutcheck"
	"sariadne/internal/analysis/load"
	"sariadne/internal/analysis/lockcheck"
	"sariadne/internal/analysis/metricnames"
	"sariadne/internal/analysis/simnetimport"
	"sariadne/internal/analysis/sleeptest"
)

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	goroutinecheck.Analyzer,
	detrand.Analyzer,
	sleeptest.Analyzer,
	metricnames.Analyzer,
	simnetimport.Analyzer,
	atomicmix.Analyzer,
	immutcheck.Analyzer,
	hotalloc.Analyzer,
	errdrop.Analyzer,
}

// finding is one diagnostic in -json output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// listedPackage is the subset of `go list -json` output sdplint needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Module       *struct{ Path string }
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

func main() {
	vet := flag.Bool("vet", true, "also run the standard `go vet` passes")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout instead of text lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sdplint [-vet=false] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet && !*jsonOut {
		if !runVet(patterns) {
			failed = true
		}
	}

	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdplint: %v\n", err)
		os.Exit(2)
	}
	findings, ok := runAnalyzers(pkgs, !*jsonOut)
	if !ok {
		failed = true
	}
	if *jsonOut {
		// Always an array (possibly empty), so consumers can parse
		// unconditionally.
		if findings == nil {
			findings = []finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "sdplint: %v\n", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runVet shells out to the toolchain's vet driver so sdplint's custom
// passes run "alongside the standard vet passes" without vendoring them.
func runVet(patterns []string) bool {
	cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return false
		}
		// A missing go tool is not a lint finding: report and continue
		// with the custom passes, which need no subprocess.
		fmt.Fprintf(os.Stderr, "sdplint: skipping go vet: %v\n", err)
	}
	return true
}

func listPackages(patterns []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

func runAnalyzers(pkgs []*listedPackage, print bool) ([]finding, bool) {
	var findings []finding
	modulePath := ""
	for _, p := range pkgs {
		if p.Module != nil && modulePath == "" {
			modulePath = p.Module.Path
		}
	}
	// The import map must cover the whole module, not just the analyzed
	// patterns: a listed package may import an unlisted sibling, and
	// resolving that sibling through the stdlib fallback importer would
	// give its transitive dependencies a second, non-identical set of
	// type objects.
	moduleFiles := make(map[string][]string)
	deps := pkgs
	if modulePath != "" {
		if all, err := listPackages([]string{modulePath + "/..."}); err == nil {
			deps = all
		}
	}
	for _, p := range deps {
		moduleFiles[p.ImportPath] = abs(p.Dir, p.GoFiles)
	}
	loader := load.NewLoader(modulePath, moduleFiles)

	ok := true
	for _, p := range pkgs {
		// Unit 1: the library files.
		units := []struct {
			path     string
			files    []string
			testOnly bool // report only _test.go diagnostics (dedup)
		}{
			{p.ImportPath, abs(p.Dir, p.GoFiles), false},
		}
		// Unit 2: library + in-package tests, reporting test files only.
		if len(p.TestGoFiles) > 0 {
			units = append(units, struct {
				path     string
				files    []string
				testOnly bool
			}{p.ImportPath, abs(p.Dir, append(append([]string{}, p.GoFiles...), p.TestGoFiles...)), true})
		}
		// Unit 3: the external _test package.
		if len(p.XTestGoFiles) > 0 {
			units = append(units, struct {
				path     string
				files    []string
				testOnly bool
			}{p.ImportPath + "_test", abs(p.Dir, p.XTestGoFiles), false},
			)
		}
		for _, u := range units {
			pkg, err := loader.LoadFiles(u.path, u.files)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sdplint: %v\n", err)
				ok = false
				continue
			}
			for _, a := range analyzers {
				diags, err := analysis.Run(a, loader.Fset, pkg.Files, pkg.Pkg, pkg.Info)
				if err != nil {
					fmt.Fprintf(os.Stderr, "sdplint: %v\n", err)
					ok = false
					continue
				}
				for _, d := range diags {
					pos := loader.Fset.Position(d.Pos)
					if u.testOnly && !strings.HasSuffix(pos.Filename, "_test.go") {
						continue
					}
					findings = append(findings, finding{
						File:     rel(pos.Filename),
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  d.Message,
						Analyzer: d.Analyzer,
					})
					if print {
						fmt.Printf("%s: %s (%s)\n", rel(pos.String()), d.Message, d.Analyzer)
					}
					ok = false
				}
			}
		}
	}
	return findings, ok
}

func abs(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// rel trims the working directory prefix so diagnostics read like go
// tool output.
func rel(pos string) string {
	wd, err := os.Getwd()
	if err != nil {
		return pos
	}
	if r, err := filepath.Rel(wd, pos); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return pos
}
