// Command metricsmoke is the CI smoke check behind `make metrics-smoke`:
// it builds sdpd, boots it with the HTTP gateway enabled, scrapes
// GET /metrics, and fails unless the payload is well-formed Prometheus
// text exposition carrying the acceptance metrics (phase timers, registry
// histograms, discovery counters, the Bloom false-positive-rate gauge).
//
// Usage:
//
//	go run ./cmd/metricsmoke
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

// expositionLine accepts Prometheus text format 0.0.4: HELP/TYPE comments
// and `name[{le="..."}] value` samples.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-z][a-z0-9_]* .+|[a-z][a-z0-9_]*(\{le="[^"]+"\})? -?[0-9.eE+-]+)$`)

// required is the acceptance surface: every layer's instruments must show
// up on one scrape of a freshly booted daemon.
var required = []string{
	"sdpd_requests_total",
	"ontology_parse_seconds",
	"ontology_classify_seconds",
	"registry_insert_seconds",
	"registry_query_seconds",
	"discovery_forwards_sent_total",
	"discovery_bloom_false_positive_rate",
	"match_encoded_ops_total",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "metricsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("metricsmoke: ok")
}

func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

func run() error {
	tmp, err := os.MkdirTemp("", "metricsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "sdpd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sdpd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build sdpd: %w", err)
	}

	httpAddr, err := freePort()
	if err != nil {
		return err
	}
	daemon := exec.Command(bin, "-listen", "127.0.0.1:0", "-http", httpAddr)
	daemon.Stdout, daemon.Stderr = os.Stderr, os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start sdpd: %w", err)
	}
	defer func() {
		_ = daemon.Process.Kill()
		_ = daemon.Wait()
	}()

	body, err := scrape("http://" + httpAddr + "/metrics")
	if err != nil {
		return err
	}
	return validate(body)
}

// scrape polls until the daemon's gateway is up, then returns the payload.
func scrape(url string) (string, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return "", fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				return "", fmt.Errorf("GET /metrics: content type %q", ct)
			}
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				return "", err
			}
			return string(data), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("gateway never came up: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func validate(body string) error {
	if strings.TrimSpace(body) == "" {
		return fmt.Errorf("empty exposition")
	}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			return fmt.Errorf("malformed exposition line %d: %q", i+1, line)
		}
	}
	for _, name := range required {
		if !strings.Contains(body, name) {
			return fmt.Errorf("required metric %s missing from /metrics", name)
		}
	}
	return nil
}
