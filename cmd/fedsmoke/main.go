// Command fedsmoke is the CI smoke check behind `make federation-smoke`:
// it builds sdpd, boots three daemons federated over loopback UDP,
// registers a service advertisement on one, resolves a semantic query
// from another, and fails unless the hit comes back across the backbone.
// It also scrapes GET /metrics on a federated daemon and requires the
// transport byte counters to be nonzero, proving real datagrams moved.
//
// The observability surfaces ride the same boot: a traced query from C
// must return spans naming the cross-daemon hop to B, the origin daemon
// must serve that trace back on GET /traces/{id}, trace IDs minted by
// different processes must not collide, and GET /healthz must go green
// on all three daemons.
//
// A second three-daemon federation then boots with tenant admission
// enabled (-auth-secret): unauthorized publishes must be rejected with
// typed codes on every daemon and must never surface in any peer's
// Bloom summary, an authorized tenant-qualified publish must resolve
// across the backbone, a tenant driven past its burst must get
// rate_limited, and tenant_rate_limited_total must show on /metrics.
//
// Usage:
//
//	go run ./cmd/fedsmoke
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"sariadne/internal/profile"
	"sariadne/internal/tenant"
)

const smokeDeadline = 60 * time.Second

var ontologies = []string{
	"internal/profile/testdata/media-ontology.xml",
	"internal/profile/testdata/servers-ontology.xml",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fedsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("fedsmoke: ok")
}

// request and response mirror the sdpd client protocol: one JSON
// datagram each way.
type request struct {
	Op    string `json:"op"`
	Doc   string `json:"doc,omitempty"`
	Name  string `json:"name,omitempty"`
	Token string `json:"token,omitempty"`
	Trace bool   `json:"trace,omitempty"`
}

type response struct {
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Code    string `json:"code,omitempty"`
	Partial bool   `json:"partial,omitempty"`
	Hits    []struct {
		Service    string `json:"service"`
		Capability string `json:"capability"`
		Provider   string `json:"provider"`
	} `json:"hits,omitempty"`
	Peers []struct {
		Addr       string `json:"addr"`
		Entries    int    `json:"entries"`
		HasSummary bool   `json:"has_summary"`
	} `json:"peers,omitempty"`
	TraceID uint64 `json:"trace_id,omitempty"`
	Spans   []struct {
		Node  string `json:"node"`
		Event string `json:"event"`
		Peer  string `json:"peer,omitempty"`
	} `json:"spans,omitempty"`
}

// daemon is one booted sdpd process.
type daemon struct {
	name       string
	clientAddr string
	fedAddr    string
	httpAddr   string
	cmd        *exec.Cmd
}

func run() error {
	tmp, err := os.MkdirTemp("", "fedsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "sdpd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sdpd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build sdpd: %w", err)
	}

	deadline := time.Now().Add(smokeDeadline)

	// Three daemons on loopback: A is the seed, B and C peer with it (C
	// also with B, so summaries and queries travel every edge we assert).
	a, err := boot(bin, "a", true, nil)
	if err != nil {
		return err
	}
	defer a.stop()
	b, err := boot(bin, "b", true, nil, a.fedAddr)
	if err != nil {
		return err
	}
	defer b.stop()
	c, err := boot(bin, "c", true, nil, a.fedAddr, b.fedAddr)
	if err != nil {
		return err
	}
	defer c.stop()
	for _, d := range []*daemon{a, b, c} {
		if err := d.awaitUp(deadline); err != nil {
			return err
		}
	}

	// Register the media center on B, then wait until C's view of the
	// backbone shows B's directory carrying entries.
	doc, err := os.ReadFile("internal/profile/testdata/media-center.xml")
	if err != nil {
		return err
	}
	resp, err := send(b.clientAddr, request{Op: "register", Doc: string(doc)})
	if err != nil {
		return fmt.Errorf("register on %s: %w", b.name, err)
	}
	if !resp.OK {
		return fmt.Errorf("register on %s: %s", b.name, resp.Error)
	}
	if err := c.awaitSummary(deadline, 1); err != nil {
		return err
	}

	// Resolve the tablet's requirement from C: the only VideoServer that
	// can serve it lives in B's directory, across the backbone.
	req, err := os.ReadFile("internal/profile/testdata/tablet-request.xml")
	if err != nil {
		return err
	}
	resp, err = send(c.clientAddr, request{Op: "query", Doc: string(req)})
	if err != nil {
		return fmt.Errorf("query on %s: %w", c.name, err)
	}
	if !resp.OK {
		return fmt.Errorf("query on %s: %s", c.name, resp.Error)
	}
	if resp.Partial {
		return fmt.Errorf("query on %s came back partial with all daemons alive", c.name)
	}
	found := false
	for _, h := range resp.Hits {
		if h.Service == "HomeMediaCenter" {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("query on %s: HomeMediaCenter not among %d hit(s)", c.name, len(resp.Hits))
	}

	if err := checkTracedQuery(b, c, string(req)); err != nil {
		return err
	}
	for _, d := range []*daemon{a, b, c} {
		if err := d.awaitHealthy(deadline); err != nil {
			return err
		}
	}
	if err := checkTransportCounters("http://" + a.httpAddr + "/metrics"); err != nil {
		return err
	}

	// Tear the open federation down before booting the admission one so
	// six daemons never run at once.
	a.stop()
	b.stop()
	c.stop()
	return checkAdmission(bin)
}

// admissionSecret is the shared HMAC secret every admission daemon and
// the smoke's client-side token minting agree on.
const admissionSecret = "fedsmoke-shared-admission-secret"

// checkAdmission boots a second three-daemon federation with tenant
// admission enforced end-to-end and proves the gatekeeper holds at the
// backbone scale: unauthorized publishes bounce with typed codes on
// every daemon and never reach any peer's Bloom summary, an authorized
// tenant-qualified publish resolves across the backbone, the tenant's
// token bucket runs dry into rate_limited, and the tenant_* series are
// live on /metrics.
func checkAdmission(bin string) error {
	deadline := time.Now().Add(smokeDeadline)
	flags := []string{
		"-auth-secret", admissionSecret,
		"-anon-reads",
		// A near-zero refill makes the test deterministic: only the burst
		// is ever spendable, however slowly the smoke machine runs.
		"-tenant-rate", "1e-9",
		"-tenant-burst", "8",
	}
	a, err := boot(bin, "auth-a", true, flags)
	if err != nil {
		return err
	}
	defer a.stop()
	b, err := boot(bin, "auth-b", true, flags, a.fedAddr)
	if err != nil {
		return err
	}
	defer b.stop()
	c, err := boot(bin, "auth-c", true, flags, a.fedAddr, b.fedAddr)
	if err != nil {
		return err
	}
	defer c.stop()
	all := []*daemon{a, b, c}
	for _, d := range all {
		// -anon-reads keeps the token-less stats poll serving.
		if err := d.awaitUp(deadline); err != nil {
			return err
		}
	}

	doc, err := os.ReadFile("internal/profile/testdata/media-center.xml")
	if err != nil {
		return err
	}
	qualified, err := qualifyService(doc, "alice")
	if err != nil {
		return err
	}
	malloryTok, err := tenant.MintToken([]byte(admissionSecret), "mallory", tenant.RolePublisher, time.Hour, nil)
	if err != nil {
		return err
	}
	aliceTok, err := tenant.MintToken([]byte(admissionSecret), "alice", tenant.RolePublisher, time.Hour, nil)
	if err != nil {
		return err
	}

	// Unauthorized publishes must bounce on EVERY daemon: a forged token
	// (unauthenticated), a token-less caller — the anonymous read-only
	// tenant under -anon-reads — and a valid tenant writing outside its
	// namespace (both forbidden). None may regenerate a summary.
	for _, d := range all {
		if err := expectDenied(d, request{Op: "register", Doc: string(doc), Token: "sdp1.forged.token"}, "unauthenticated"); err != nil {
			return err
		}
		if err := expectDenied(d, request{Op: "register", Doc: string(doc)}, "forbidden"); err != nil {
			return err
		}
		if err := expectDenied(d, request{Op: "register", Doc: string(qualified), Token: malloryTok}, "forbidden"); err != nil {
			return err
		}
	}

	// The authorized tenant-qualified publish lands on B and resolves
	// from C across the backbone.
	resp, err := send(b.clientAddr, request{Op: "register", Doc: string(qualified), Token: aliceTok})
	if err != nil {
		return fmt.Errorf("authorized register on %s: %w", b.name, err)
	}
	if !resp.OK {
		return fmt.Errorf("authorized register on %s denied: %s (%s)", b.name, resp.Error, resp.Code)
	}
	if err := c.awaitSummary(deadline, 1); err != nil {
		return err
	}
	req, err := os.ReadFile("internal/profile/testdata/tablet-request.xml")
	if err != nil {
		return err
	}
	resp, err = send(c.clientAddr, request{Op: "query", Doc: string(req)})
	if err != nil {
		return fmt.Errorf("anonymous query on %s: %w", c.name, err)
	}
	if !resp.OK {
		return fmt.Errorf("anonymous query on %s: %s (%s)", c.name, resp.Error, resp.Code)
	}
	found := false
	for _, h := range resp.Hits {
		if h.Service == "alice/HomeMediaCenter" {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("query on %s: alice/HomeMediaCenter not among %d hit(s)", c.name, len(resp.Hits))
	}

	// No denied publish may have leaked into a directory: B is the only
	// daemon holding an advertisement, so every summary any daemon holds
	// for A or C must still be empty.
	for _, d := range all {
		resp, err := send(d.clientAddr, request{Op: "peers"})
		if err != nil {
			return fmt.Errorf("peers on %s: %w", d.name, err)
		}
		if !resp.OK {
			return fmt.Errorf("peers on %s: %s", d.name, resp.Error)
		}
		for _, p := range resp.Peers {
			if p.Addr != b.fedAddr && p.HasSummary && p.Entries != 0 {
				return fmt.Errorf("daemon %s sees %d summary entries from %s; denied publishes leaked into a Bloom summary",
					d.name, p.Entries, p.Addr)
			}
		}
	}

	// Drive alice's token bucket dry on B: with a 1e-9 refill only the
	// burst of 8 is spendable, one of which the register above consumed.
	limited := false
	for i := 0; i < 12; i++ {
		resp, err := send(b.clientAddr, request{Op: "register", Doc: string(qualified), Token: aliceTok})
		if err != nil {
			return fmt.Errorf("burst register %d on %s: %w", i, b.name, err)
		}
		if !resp.OK {
			if resp.Code != "rate_limited" {
				return fmt.Errorf("burst register %d on %s: code %q, want rate_limited", i, b.name, resp.Code)
			}
			limited = true
			break
		}
	}
	if !limited {
		return fmt.Errorf("alice was never rate limited on %s after exhausting the burst", b.name)
	}
	return checkTenantCounters("http://" + b.httpAddr + "/metrics")
}

// expectDenied sends a mutating request that must bounce with the given
// typed admission code.
func expectDenied(d *daemon, req request, wantCode string) error {
	resp, err := send(d.clientAddr, req)
	if err != nil {
		return fmt.Errorf("denied-publish probe on %s: %w", d.name, err)
	}
	if resp.OK {
		return fmt.Errorf("daemon %s admitted a publish that should be %s", d.name, wantCode)
	}
	if resp.Code != wantCode {
		return fmt.Errorf("daemon %s denied with code %q, want %q", d.name, resp.Code, wantCode)
	}
	return nil
}

// qualifyService rewrites an advertisement under a tenant namespace the
// same way sdpctl publish does.
func qualifyService(doc []byte, tn string) ([]byte, error) {
	svc, err := profile.Unmarshal(doc)
	if err != nil {
		return nil, err
	}
	svc.Name = tenant.Qualify(tn, svc.Name)
	return profile.Marshal(svc)
}

// checkTenantCounters scrapes /metrics on the daemon that enforced the
// admission decisions and requires the tenant series to be live: the
// throttle counter nonzero and alice's labeled live-services gauge at 1.
func checkTenantCounters(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	text := string(body)
	rateLimited := regexp.MustCompile(`(?m)^tenant_rate_limited_total ([0-9.eE+]+)$`).FindStringSubmatch(text)
	if rateLimited == nil {
		return fmt.Errorf("tenant_rate_limited_total missing from /metrics")
	}
	if v, err := strconv.ParseFloat(rateLimited[1], 64); err != nil || v <= 0 {
		return fmt.Errorf("tenant_rate_limited_total is %q; expected nonzero after the burst test", rateLimited[1])
	}
	if !regexp.MustCompile(`(?m)^tenant_live_services\{tenant="alice"\} 1$`).MatchString(text) {
		return fmt.Errorf(`tenant_live_services{tenant="alice"} 1 missing from /metrics`)
	}
	return nil
}

// checkTracedQuery resolves the same request from C with tracing on: the
// inline spans must name the cross-backbone hop into B's directory, the
// origin daemon must serve the trace back on GET /traces/{id}, and a
// trace minted by B's process must not share C's entropy word (the
// collision-proofing the random high word buys).
func checkTracedQuery(b, c *daemon, req string) error {
	resp, err := send(c.clientAddr, request{Op: "query", Doc: req, Trace: true})
	if err != nil {
		return fmt.Errorf("traced query on %s: %w", c.name, err)
	}
	if !resp.OK {
		return fmt.Errorf("traced query on %s: %s", c.name, resp.Error)
	}
	if resp.TraceID == 0 || len(resp.Spans) == 0 {
		return fmt.Errorf("traced query on %s returned no trace (id=%d, %d spans)", c.name, resp.TraceID, len(resp.Spans))
	}
	nodes := map[string]bool{}
	for _, s := range resp.Spans {
		nodes[s.Node] = true
	}
	if !nodes[c.fedAddr] || !nodes[b.fedAddr] {
		return fmt.Errorf("trace spans cover %v; want both the origin %s and the answering directory %s",
			nodes, c.fedAddr, b.fedAddr)
	}

	var rec struct {
		ID    uint64 `json:"id"`
		Spans []struct {
			Node string `json:"node"`
		} `json:"spans"`
	}
	url := fmt.Sprintf("http://%s/traces/%d", c.httpAddr, resp.TraceID)
	hresp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, hresp.StatusCode)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&rec); err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	if rec.ID != resp.TraceID || len(rec.Spans) != len(resp.Spans) {
		return fmt.Errorf("retained trace mismatch: id=%d spans=%d, query returned id=%d spans=%d",
			rec.ID, len(rec.Spans), resp.TraceID, len(resp.Spans))
	}

	bresp, err := send(b.clientAddr, request{Op: "query", Doc: req, Trace: true})
	if err != nil {
		return fmt.Errorf("traced query on %s: %w", b.name, err)
	}
	if !bresp.OK || bresp.TraceID == 0 {
		return fmt.Errorf("traced query on %s returned no trace ID", b.name)
	}
	if bresp.TraceID>>32 == resp.TraceID>>32 {
		return fmt.Errorf("daemons %s and %s share trace entropy word %#x; cross-process IDs would collide",
			b.name, c.name, resp.TraceID>>32)
	}
	return nil
}

// boot starts one daemon; withHTTP additionally exposes the gateway for
// the metrics assertion, and extra appends daemon flags (the admission
// federation passes -auth-secret and rate-limit knobs through it).
func boot(bin, name string, withHTTP bool, extra []string, peers ...string) (*daemon, error) {
	d := &daemon{name: name}
	var err error
	if d.clientAddr, err = freePort(); err != nil {
		return nil, err
	}
	if d.fedAddr, err = freePort(); err != nil {
		return nil, err
	}
	args := []string{"-listen", d.clientAddr, "-federate", d.fedAddr}
	if withHTTP {
		if d.httpAddr, err = freePort(); err != nil {
			return nil, err
		}
		args = append(args, "-http", d.httpAddr)
	}
	for _, o := range ontologies {
		args = append(args, "-ontology", o)
	}
	args = append(args, extra...)
	for _, p := range peers {
		args = append(args, "-peer", p)
	}
	d.cmd = exec.Command(bin, args...)
	d.cmd.Stdout, d.cmd.Stderr = os.Stderr, os.Stderr
	if err := d.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start sdpd %s: %w", name, err)
	}
	return d, nil
}

func (d *daemon) stop() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
}

// awaitUp polls the client port until the daemon answers a stats op.
func (d *daemon) awaitUp(deadline time.Time) error {
	for {
		if resp, err := send(d.clientAddr, request{Op: "stats"}); err == nil && resp.OK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon %s never answered on %s", d.name, d.clientAddr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// awaitHealthy polls GET /healthz until the daemon reports 200: every
// component probe (store, gateway, backbone transport) green.
func (d *daemon) awaitHealthy(deadline time.Time) error {
	url := "http://" + d.httpAddr + "/healthz"
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon %s never served %s: %v", d.name, url, err)
			}
			return fmt.Errorf("daemon %s still unhealthy at the deadline (status %d)", d.name, resp.StatusCode)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// awaitSummary polls the peers op until some backbone peer advertises at
// least want entries, i.e. a remote directory's summary has arrived.
func (d *daemon) awaitSummary(deadline time.Time, want int) error {
	for {
		resp, err := send(d.clientAddr, request{Op: "peers"})
		if err == nil && resp.OK {
			for _, p := range resp.Peers {
				if p.HasSummary && p.Entries >= want {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon %s never saw a peer summary with >=%d entries", d.name, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func send(server string, req request) (*response, error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(data); err != nil {
		return nil, err
	}
	buf := make([]byte, 256*1024)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("waiting for reply: %w", err)
	}
	var resp response
	if err := json.Unmarshal(buf[:n], &resp); err != nil {
		return nil, fmt.Errorf("malformed reply: %w", err)
	}
	return &resp, nil
}

var counterLine = regexp.MustCompile(`^(transport_bytes_(?:sent|received)_total) ([0-9.eE+]+)$`)

// checkTransportCounters scrapes /metrics and requires both transport
// byte counters to be present and nonzero.
func checkTransportCounters(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	seen := map[string]float64{}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(body), -1) {
		if m := counterLine.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return fmt.Errorf("unparseable sample %q: %w", line, err)
			}
			seen[m[1]] = v
		}
	}
	for _, name := range []string{"transport_bytes_sent_total", "transport_bytes_received_total"} {
		v, ok := seen[name]
		if !ok {
			return fmt.Errorf("%s missing from /metrics", name)
		}
		if v <= 0 {
			return fmt.Errorf("%s is %v; expected nonzero backbone traffic", name, v)
		}
	}
	return nil
}

// freePort reserves a loopback port by binding and releasing it; the
// daemon rebinds the same address (UDP and TCP port spaces are disjoint,
// but loopback reuse races are vanishingly rare for a smoke).
func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}
