package main

// Live time-series rendering over daemon /metrics endpoints: `sdpctl top
// -watch` re-renders the federation table at an interval, and `sdpctl
// watch` turns one daemon's histogram into a windowed quantile stream —
// each row is the latency distribution of the ops that happened since
// the previous scrape (cumulative bucket subtraction via
// telemetry.DeltaSnapshot), not the since-boot aggregate.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"sariadne/internal/telemetry"
)

// Transient-failure retry for scrapes: a watch row should survive one
// dropped scrape (daemon restarting under it, listen queue hiccup)
// instead of printing "down" and losing the window anchor. Two retries
// with doubling backoff cover a restart gap without stalling a dead
// daemon's row for long.
const (
	scrapeRetries = 2
	scrapeBackoff = 200 * time.Millisecond
)

// scrapeWithRetry runs one scrape up to 1+scrapeRetries times, backing
// off between attempts.
func scrapeWithRetry[T any](scrape func() (T, error)) (T, error) {
	backoff := scrapeBackoff
	for attempt := 0; ; attempt++ {
		v, err := scrape()
		if err == nil || attempt == scrapeRetries {
			return v, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// runTopWatch renders the top table, then every interval again, count
// times in total (count <= 0 with an interval means forever). A zero
// interval renders once: plain `sdpctl top`.
func runTopWatch(w io.Writer, addrs []string, timeout, interval time.Duration, count int) {
	runTop(w, addrs, timeout)
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for n := 1; count <= 0 || n < count; n++ {
		<-t.C
		fmt.Fprintln(w)
		runTop(w, addrs, timeout)
	}
}

// runWatch streams windowed quantiles of one histogram metric: scrape,
// subtract the previous cumulative snapshot, print the window's
// p50/p95/p99/p999. count <= 0 means run until interrupted.
func runWatch(w io.Writer, addr, metric string, timeout, interval time.Duration, count int) {
	client := httpClient(timeout)
	fmt.Fprintf(w, "watching %s on %s every %s\n", metric, addr, interval)
	fmt.Fprintf(w, "%-10s %8s %10s %10s %10s %10s %10s\n",
		"ELAPSED", "COUNT", "RATE/S", "P50", "P95", "P99", "P999")

	seconds := strings.HasSuffix(metric, "_seconds")
	quant := func(s telemetry.MetricSnapshot, q float64) string {
		if s.Count == 0 {
			return "-"
		}
		v := s.Quantile(q)
		if seconds {
			return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}

	var prev telemetry.MetricSnapshot
	havePrev := false
	start := time.Now()
	t := time.NewTicker(interval)
	defer t.Stop()
	for n := 0; count <= 0 || n < count; n++ {
		if n > 0 {
			<-t.C
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		snaps, err := scrapeWithRetry(func() (map[string]telemetry.MetricSnapshot, error) {
			return scrapeSnapshots(client, addr)
		})
		if err != nil {
			fmt.Fprintf(w, "%-10s down: %v\n", elapsed, err)
			continue
		}
		cur, ok := snaps[metric]
		if !ok || cur.Kind != telemetry.KindHistogram {
			fmt.Fprintf(w, "%-10s no histogram %q at %s\n", elapsed, metric, addr)
			continue
		}
		if !havePrev {
			// First scrape anchors the window; nothing to diff yet.
			prev, havePrev = cur, true
			fmt.Fprintf(w, "%-10s (anchor: %d observations so far)\n", elapsed, cur.Count)
			continue
		}
		d := telemetry.DeltaSnapshot(prev, cur)
		prev = cur
		rate := "-"
		if interval > 0 {
			rate = strconv.FormatFloat(float64(d.Count)/interval.Seconds(), 'f', 1, 64)
		}
		fmt.Fprintf(w, "%-10s %8d %10s %10s %10s %10s %10s\n",
			elapsed, d.Count, rate,
			quant(d, 0.50), quant(d, 0.95), quant(d, 0.99), quant(d, 0.999))
	}
}

// scrapeSnapshots fetches one daemon's /metrics and reassembles the
// exposition into telemetry snapshots, histograms included.
func scrapeSnapshots(client *http.Client, addr string) (map[string]telemetry.MetricSnapshot, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return parseMetricSnapshots(resp.Body)
}

// parseMetricSnapshots is the inverse of Registry.WritePrometheus: it
// rebuilds MetricSnapshot values (kind from TYPE comments, histogram
// buckets from le-labelled samples, _sum/_count suffixes) so client-side
// tooling can reuse DeltaSnapshot and Quantile on scraped data.
func parseMetricSnapshots(r io.Reader) (map[string]telemetry.MetricSnapshot, error) {
	out := make(map[string]telemetry.MetricSnapshot)
	get := func(name string) telemetry.MetricSnapshot {
		if s, ok := out[name]; ok {
			return s
		}
		return telemetry.MetricSnapshot{Name: name}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				continue
			}
			s := get(fields[0])
			switch fields[1] {
			case "counter":
				s.Kind = telemetry.KindCounter
			case "gauge":
				s.Kind = telemetry.KindGauge
			case "histogram":
				s.Kind = telemetry.KindHistogram
			}
			out[fields[0]] = s
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name, label := fields[0], ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name, label = name[:i], name[i:]
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch {
		case label != "":
			base, ok := strings.CutSuffix(name, "_bucket")
			if !ok {
				continue // only le-labelled buckets are understood
			}
			le, ok := strings.CutPrefix(label, `{le="`)
			if !ok {
				continue
			}
			le, ok = strings.CutSuffix(le, `"}`)
			if !ok || le == "+Inf" {
				continue // the +Inf edge is implied by _count
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			s := get(base)
			s.Kind = telemetry.KindHistogram
			s.Buckets = append(s.Buckets, telemetry.BucketCount{UpperBound: ub, Count: uint64(val)})
			out[base] = s
		case strings.HasSuffix(name, "_sum"):
			base := strings.TrimSuffix(name, "_sum")
			if s, ok := out[base]; ok && s.Kind == telemetry.KindHistogram {
				s.Sum = val
				out[base] = s
				continue
			}
			s := get(name)
			s.Value = val
			out[name] = s
		case strings.HasSuffix(name, "_count"):
			base := strings.TrimSuffix(name, "_count")
			if s, ok := out[base]; ok && s.Kind == telemetry.KindHistogram {
				s.Count = uint64(val)
				out[base] = s
				continue
			}
			s := get(name)
			s.Value = val
			out[name] = s
		default:
			s := get(name)
			s.Value = val
			out[name] = s
		}
	}
	return out, sc.Err()
}

// curvePoint mirrors sdpd's timeseriesPoint wire layout: one persisted
// observation window of a *_seconds histogram.
type curvePoint struct {
	ElapsedMs int64   `json:"elapsed_ms"`
	WindowMs  int64   `json:"window_ms"`
	Count     uint64  `json:"count"`
	RatePerS  float64 `json:"rate_per_sec"`
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	P999Nanos int64   `json:"p999_ns"`
}

// runWatchHistory prints the daemon's persisted windows for one metric
// before live streaming starts: GET /timeseries?since= serves the
// telemetry journal on a daemon running with -telemetry-journal, so the
// rows can predate this sdpctl — and even this daemon process.
func runWatchHistory(w io.Writer, addr, metric string, timeout, since time.Duration) error {
	u := fmt.Sprintf("http://%s/timeseries?metric=%s&since=%s",
		addr, url.QueryEscape(metric), url.QueryEscape(since.String()))
	resp, err := httpClient(timeout).Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET /timeseries: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var ts struct {
		Samples int                     `json:"samples"`
		Source  string                  `json:"source"`
		Series  map[string][]curvePoint `json:"series"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&ts); err != nil {
		return fmt.Errorf("malformed reply: %w", err)
	}
	pts := ts.Series[metric]
	fmt.Fprintf(w, "history: last %s of %s from %s (%d windows, source %s)\n",
		since, metric, addr, len(pts), ts.Source)
	if len(pts) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%-10s %8s %10s %10s %10s %10s %10s\n",
		"ELAPSED", "COUNT", "RATE/S", "P50", "P95", "P99", "P999")
	nanos := func(n int64) string {
		if n == 0 {
			return "-"
		}
		return time.Duration(n).Round(time.Microsecond).String()
	}
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %8d %10.1f %10s %10s %10s %10s\n",
			time.Duration(p.ElapsedMs)*time.Millisecond,
			p.Count, p.RatePerS,
			nanos(p.P50Nanos), nanos(p.P95Nanos), nanos(p.P99Nanos), nanos(p.P999Nanos))
	}
	return nil
}

// alertRow mirrors telemetry.Alert's wire form.
type alertRow struct {
	Code      string    `json:"code"`
	Severity  string    `json:"severity"`
	Metric    string    `json:"metric"`
	At        time.Time `json:"at"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	Evidence  string    `json:"evidence"`
}

// runAlerts fetches a daemon's GET /alerts and renders the drift
// watchdog's view. It reports whether the daemon is quiet (no active
// alerts) so main can exit non-zero for soak scripts, mirroring
// `sdpctl health`; a daemon without a watchdog counts as quiet.
func runAlerts(w io.Writer, addr string, timeout time.Duration) (bool, error) {
	resp, err := httpClient(timeout).Get("http://" + addr + "/alerts")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("GET /alerts: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var view struct {
		Watching bool       `json:"watching"`
		Active   []alertRow `json:"active"`
		Fired    []alertRow `json:"fired"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		return false, fmt.Errorf("malformed reply: %w", err)
	}
	if !view.Watching {
		fmt.Fprintf(w, "%s: no drift watchdog (daemon runs without -watch-every)\n", addr)
		return true, nil
	}
	fmt.Fprintf(w, "%s: watchdog running, %d active, %d fired since boot\n",
		addr, len(view.Active), len(view.Fired))
	if len(view.Active) > 0 {
		fmt.Fprintf(w, "%-20s %-8s %-34s %12s %12s %s\n",
			"ACTIVE", "SEV", "METRIC", "VALUE", "THRESHOLD", "SINCE")
		for _, a := range view.Active {
			fmt.Fprintf(w, "%-20s %-8s %-34s %12.4g %12.4g %s\n",
				a.Code, a.Severity, a.Metric, a.Value, a.Threshold, a.At.Format(time.RFC3339))
			if a.Evidence != "" {
				fmt.Fprintf(w, "  %s\n", a.Evidence)
			}
		}
	}
	for i, a := range view.Fired {
		if i == 0 {
			fmt.Fprintln(w, "fired (newest first):")
		}
		fmt.Fprintf(w, "  %s %-20s %-8s %s\n",
			a.At.Format(time.RFC3339), a.Code, a.Severity, a.Evidence)
	}
	return len(view.Active) == 0, nil
}
