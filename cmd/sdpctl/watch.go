package main

// Live time-series rendering over daemon /metrics endpoints: `sdpctl top
// -watch` re-renders the federation table at an interval, and `sdpctl
// watch` turns one daemon's histogram into a windowed quantile stream —
// each row is the latency distribution of the ops that happened since
// the previous scrape (cumulative bucket subtraction via
// telemetry.DeltaSnapshot), not the since-boot aggregate.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sariadne/internal/telemetry"
)

// runTopWatch renders the top table, then every interval again, count
// times in total (count <= 0 with an interval means forever). A zero
// interval renders once: plain `sdpctl top`.
func runTopWatch(w io.Writer, addrs []string, timeout, interval time.Duration, count int) {
	runTop(w, addrs, timeout)
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for n := 1; count <= 0 || n < count; n++ {
		<-t.C
		fmt.Fprintln(w)
		runTop(w, addrs, timeout)
	}
}

// runWatch streams windowed quantiles of one histogram metric: scrape,
// subtract the previous cumulative snapshot, print the window's
// p50/p95/p99/p999. count <= 0 means run until interrupted.
func runWatch(w io.Writer, addr, metric string, timeout, interval time.Duration, count int) {
	client := httpClient(timeout)
	fmt.Fprintf(w, "watching %s on %s every %s\n", metric, addr, interval)
	fmt.Fprintf(w, "%-10s %8s %10s %10s %10s %10s %10s\n",
		"ELAPSED", "COUNT", "RATE/S", "P50", "P95", "P99", "P999")

	seconds := strings.HasSuffix(metric, "_seconds")
	quant := func(s telemetry.MetricSnapshot, q float64) string {
		if s.Count == 0 {
			return "-"
		}
		v := s.Quantile(q)
		if seconds {
			return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}

	var prev telemetry.MetricSnapshot
	havePrev := false
	start := time.Now()
	t := time.NewTicker(interval)
	defer t.Stop()
	for n := 0; count <= 0 || n < count; n++ {
		if n > 0 {
			<-t.C
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		snaps, err := scrapeSnapshots(client, addr)
		if err != nil {
			fmt.Fprintf(w, "%-10s down: %v\n", elapsed, err)
			continue
		}
		cur, ok := snaps[metric]
		if !ok || cur.Kind != telemetry.KindHistogram {
			fmt.Fprintf(w, "%-10s no histogram %q at %s\n", elapsed, metric, addr)
			continue
		}
		if !havePrev {
			// First scrape anchors the window; nothing to diff yet.
			prev, havePrev = cur, true
			fmt.Fprintf(w, "%-10s (anchor: %d observations so far)\n", elapsed, cur.Count)
			continue
		}
		d := telemetry.DeltaSnapshot(prev, cur)
		prev = cur
		rate := "-"
		if interval > 0 {
			rate = strconv.FormatFloat(float64(d.Count)/interval.Seconds(), 'f', 1, 64)
		}
		fmt.Fprintf(w, "%-10s %8d %10s %10s %10s %10s %10s\n",
			elapsed, d.Count, rate,
			quant(d, 0.50), quant(d, 0.95), quant(d, 0.99), quant(d, 0.999))
	}
}

// scrapeSnapshots fetches one daemon's /metrics and reassembles the
// exposition into telemetry snapshots, histograms included.
func scrapeSnapshots(client *http.Client, addr string) (map[string]telemetry.MetricSnapshot, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return parseMetricSnapshots(resp.Body)
}

// parseMetricSnapshots is the inverse of Registry.WritePrometheus: it
// rebuilds MetricSnapshot values (kind from TYPE comments, histogram
// buckets from le-labelled samples, _sum/_count suffixes) so client-side
// tooling can reuse DeltaSnapshot and Quantile on scraped data.
func parseMetricSnapshots(r io.Reader) (map[string]telemetry.MetricSnapshot, error) {
	out := make(map[string]telemetry.MetricSnapshot)
	get := func(name string) telemetry.MetricSnapshot {
		if s, ok := out[name]; ok {
			return s
		}
		return telemetry.MetricSnapshot{Name: name}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				continue
			}
			s := get(fields[0])
			switch fields[1] {
			case "counter":
				s.Kind = telemetry.KindCounter
			case "gauge":
				s.Kind = telemetry.KindGauge
			case "histogram":
				s.Kind = telemetry.KindHistogram
			}
			out[fields[0]] = s
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name, label := fields[0], ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name, label = name[:i], name[i:]
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch {
		case label != "":
			base, ok := strings.CutSuffix(name, "_bucket")
			if !ok {
				continue // only le-labelled buckets are understood
			}
			le, ok := strings.CutPrefix(label, `{le="`)
			if !ok {
				continue
			}
			le, ok = strings.CutSuffix(le, `"}`)
			if !ok || le == "+Inf" {
				continue // the +Inf edge is implied by _count
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			s := get(base)
			s.Kind = telemetry.KindHistogram
			s.Buckets = append(s.Buckets, telemetry.BucketCount{UpperBound: ub, Count: uint64(val)})
			out[base] = s
		case strings.HasSuffix(name, "_sum"):
			base := strings.TrimSuffix(name, "_sum")
			if s, ok := out[base]; ok && s.Kind == telemetry.KindHistogram {
				s.Sum = val
				out[base] = s
				continue
			}
			s := get(name)
			s.Value = val
			out[name] = s
		case strings.HasSuffix(name, "_count"):
			base := strings.TrimSuffix(name, "_count")
			if s, ok := out[base]; ok && s.Kind == telemetry.KindHistogram {
				s.Count = uint64(val)
				out[base] = s
				continue
			}
			s := get(name)
			s.Value = val
			out[name] = s
		default:
			s := get(name)
			s.Value = val
			out[name] = s
		}
	}
	return out, sc.Err()
}
