package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sariadne/internal/telemetry"
)

// TestRunTopGolden pins the exact table layout: column order is the
// topColumns slice, not map iteration, so two runs against identical
// daemons are byte-identical. The daemon address is substituted out
// because httptest picks the port.
func TestRunTopGolden(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "sdpd_requests_total 9\n"+
			"sdpd_request_errors_total 1\n"+
			"discovery_queries_served_total 7\n"+
			"discovery_forwards_sent_total 4\n"+
			"discovery_forwards_pruned_total 2\n"+
			"discovery_forward_giveups_total 0\n"+
			"discovery_partial_replies_total 0\n"+
			"telemetry_recorder_traces_total 3\n"+
			"transport_bytes_sent_total 1024\n"+
			"transport_bytes_received_total 2048\n"+
			"sdpd_healthy 1\n")
	}))
	t.Cleanup(ts.Close)
	addr := ts.Listener.Addr().String()

	render := func() string {
		var b strings.Builder
		runTop(&b, []string{addr}, time.Second)
		// Swap the padded address field whole so column widths survive.
		return strings.ReplaceAll(b.String(),
			fmt.Sprintf("%-22s", addr), fmt.Sprintf("%-22s", "DAEMON-A"))
	}
	golden := "DAEMON                     REQS     ERRS   SERVED      FWD   PRUNED   GIVEUP  PARTIAL   TRACES    B-OUT     B-IN  HEALTHY\n" +
		"DAEMON-A                      9        1        7        4        2        0        0        3     1024     2048        1\n"
	if got := render(); got != golden {
		t.Fatalf("table drifted from golden output:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	if render() != render() {
		t.Fatal("repeated renders differ: column ordering is not deterministic")
	}
}

// TestRunTopWatchRefreshes renders the table -count times at the -watch
// interval, separated by blank lines.
func TestRunTopWatchRefreshes(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "sdpd_requests_total 5\n")
	}))
	t.Cleanup(ts.Close)

	var b strings.Builder
	runTopWatch(&b, []string{ts.Listener.Addr().String()}, time.Second, time.Millisecond, 3)
	if got := strings.Count(b.String(), "DAEMON"); got != 3 {
		t.Fatalf("want 3 table renders, got %d:\n%s", got, b.String())
	}
	if !strings.Contains(b.String(), "\n\n") {
		t.Fatalf("renders not separated:\n%s", b.String())
	}
}

// TestRunWatchWindows drives watch against a daemon whose histogram
// grows between scrapes: the first row anchors, the second must show the
// windowed delta (3 new observations in the le=4 bucket => all quantiles
// at its upper bound), not the cumulative total.
func TestRunWatchWindows(t *testing.T) {
	var scrapes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := scrapes.Add(1)
		if n == 1 {
			fmt.Fprint(w, "# TYPE demo_depth histogram\n"+
				"demo_depth_bucket{le=\"1024\"} 50\n"+
				"demo_depth_bucket{le=\"+Inf\"} 50\n"+
				"demo_depth_sum 51200\n"+
				"demo_depth_count 50\n")
			return
		}
		fmt.Fprint(w, "# TYPE demo_depth histogram\n"+
			"demo_depth_bucket{le=\"4\"} 3\n"+
			"demo_depth_bucket{le=\"1024\"} 53\n"+
			"demo_depth_bucket{le=\"+Inf\"} 53\n"+
			"demo_depth_sum 51209\n"+
			"demo_depth_count 53\n")
	}))
	t.Cleanup(ts.Close)

	var b strings.Builder
	runWatch(&b, ts.Listener.Addr().String(), "demo_depth", time.Second, time.Millisecond, 2)
	out := b.String()
	if !strings.Contains(out, "anchor: 50 observations") {
		t.Fatalf("first scrape did not anchor:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	// The window saw 3 observations, all <= 4: every quantile is 4, and
	// the cumulative 50 pre-anchor observations are invisible.
	if !strings.Contains(last, " 3 ") || strings.Count(last, " 4") < 4 {
		t.Fatalf("windowed row wrong:\n%s", out)
	}
	if strings.Contains(last, "1024") {
		t.Fatalf("cumulative bucket leaked into the window:\n%s", out)
	}
}

// TestRunWatchMissingMetric keeps the failure modes readable.
func TestRunWatchMissingMetric(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "sdpd_requests_total 5\n")
	}))
	t.Cleanup(ts.Close)
	var b strings.Builder
	runWatch(&b, ts.Listener.Addr().String(), "no_such_seconds", time.Second, time.Millisecond, 1)
	if !strings.Contains(b.String(), `no histogram "no_such_seconds"`) {
		t.Fatalf("missing metric not reported:\n%s", b.String())
	}
}

// TestParseMetricSnapshots round-trips a real registry exposition back
// into snapshots and checks quantiles survive the trip.
func TestParseMetricSnapshots(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.NewHistogram("roundtrip_query_seconds", "latency")
	h.Observe(3 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	c := reg.NewCounter("roundtrip_ops_total", "ops")
	c.Add(7)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	snaps, err := parseMetricSnapshots(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	hs, ok := snaps["roundtrip_query_seconds"]
	if !ok || hs.Kind != telemetry.KindHistogram {
		t.Fatalf("histogram lost: %+v", snaps)
	}
	if hs.Count != 3 || len(hs.Buckets) == 0 {
		t.Fatalf("histogram state wrong: %+v", hs)
	}
	want := reg.Snapshot()
	var orig telemetry.MetricSnapshot
	for _, s := range want {
		if s.Name == "roundtrip_query_seconds" {
			orig = s
		}
	}
	for _, q := range []float64{0.5, 0.99} {
		if got, w := hs.Quantile(q), orig.Quantile(q); got != w {
			t.Fatalf("q%v = %v after round trip, want %v", q, got, w)
		}
	}
	if cs := snaps["roundtrip_ops_total"]; cs.Kind != telemetry.KindCounter || cs.Value != 7 {
		t.Fatalf("counter lost: %+v", snaps["roundtrip_ops_total"])
	}
}
