package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRenderQueryComplete(t *testing.T) {
	var b strings.Builder
	renderQuery(&b, &response{OK: true, Hits: []hit{
		{Service: "MediaWorkstation", Capability: "PlayMovie", Provider: "ws-1", Distance: 3},
	}})
	out := b.String()
	if !strings.Contains(out, "MediaWorkstation") || !strings.Contains(out, "PlayMovie") {
		t.Fatalf("output lost the hit:\n%s", out)
	}
	if strings.Contains(out, "partial") {
		t.Fatalf("complete result rendered a partial marker:\n%s", out)
	}
}

func TestRenderQueryPartialWithHits(t *testing.T) {
	var b strings.Builder
	renderQuery(&b, &response{
		OK:          true,
		Hits:        []hit{{Service: "MediaWorkstation", Capability: "PlayMovie", Provider: "ws-1", Distance: 3}},
		Partial:     true,
		Unreachable: []string{"n4", "n9"},
	})
	out := b.String()
	if !strings.Contains(out, "partial result: n4, n9 unreachable") {
		t.Fatalf("partial marker missing:\n%s", out)
	}
	if !strings.Contains(out, "MediaWorkstation") {
		t.Fatalf("partial result dropped usable hits:\n%s", out)
	}
}

func TestRenderQueryPartialEmpty(t *testing.T) {
	var b strings.Builder
	renderQuery(&b, &response{OK: true, Partial: true, Unreachable: []string{"n2"}})
	out := b.String()
	if !strings.Contains(out, "no matching service") || !strings.Contains(out, "n2 unreachable") {
		t.Fatalf("empty partial result must say both 'nothing found' and 'coverage was incomplete':\n%s", out)
	}
}

func TestRenderQueryEmptyComplete(t *testing.T) {
	var b strings.Builder
	renderQuery(&b, &response{OK: true})
	if got := b.String(); got != "no matching service\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestRenderPeers(t *testing.T) {
	var b strings.Builder
	renderPeers(&b, &response{OK: true, Peers: []peer{
		{Addr: "127.0.0.1:8475", LastAnnounce: time.Now().Add(-time.Second), HasSummary: true, Entries: 2, Failures: 1},
		{Addr: "127.0.0.1:8476"},
	}})
	out := b.String()
	if !strings.Contains(out, "127.0.0.1:8475") || !strings.Contains(out, "127.0.0.1:8476") {
		t.Fatalf("output lost a peer:\n%s", out)
	}
	if !strings.Contains(out, "no summary") || !strings.Contains(out, "never") {
		t.Fatalf("summary-less seed not marked:\n%s", out)
	}
}

func TestRenderPeersEmpty(t *testing.T) {
	var b strings.Builder
	renderPeers(&b, &response{OK: true})
	if !strings.Contains(b.String(), "no backbone peers") {
		t.Fatalf("output = %q", b.String())
	}
}

// TestRenderTraceHopTree: forwarded hops indent under their forwarder,
// spans render in Seq order, and give-up reasons survive to the output.
func TestRenderTraceHopTree(t *testing.T) {
	var b strings.Builder
	renderTrace(&b, &response{OK: true, TraceID: 0xabc100000001, Spans: []span{
		// Deliberately shuffled: renderTrace must sort by Seq.
		{Node: "n2", Event: "received", Peer: "n1", Seq: 4},
		{Node: "n1", Event: "received", Seq: 1},
		{Node: "n1", Event: "local-match", Hits: 1, Seq: 2, Dur: 80 * time.Microsecond},
		{Node: "n1", Event: "forward", Peer: "n2", Seq: 3},
		{Node: "n2", Event: "reply", Hits: 1, Seq: 5},
		{Node: "n1", Event: "unreachable", Peer: "n3", Reason: "retries-exhausted", Seq: 6},
		{Node: "n1", Event: "reply", Hits: 2, Seq: 7},
	}})
	out := b.String()
	if !strings.Contains(out, "trace 0xabc100000001: 7 spans across 2 directories") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "\n  n2 received peer=n1\n") {
		t.Fatalf("forwarded hop not indented under forwarder:\n%s", out)
	}
	if !strings.Contains(out, "n1 unreachable peer=n3 reason=retries-exhausted") {
		t.Fatalf("give-up reason lost:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 || !strings.HasPrefix(lines[1], "n1 received") || !strings.HasSuffix(lines[7], "n1 reply hits=2") {
		t.Fatalf("spans not in Seq order:\n%s", out)
	}
	if !strings.Contains(out, "dur=80µs") {
		t.Fatalf("duration lost:\n%s", out)
	}
}

// TestRenderTraceInterleavedSeq: Seq counters are per-process, so a
// remote daemon's spans can carry smaller Seq values than the origin's
// forward span. The hop depth must still come from the forward edge, not
// from encounter order.
func TestRenderTraceInterleavedSeq(t *testing.T) {
	var b strings.Builder
	renderTrace(&b, &response{OK: true, TraceID: 0x5100000001, Spans: []span{
		{Node: "origin", Event: "received", Seq: 10},
		{Node: "remote", Event: "received", Peer: "origin", Seq: 2}, // remote's own counter is younger
		{Node: "origin", Event: "forward", Peer: "remote", Seq: 11},
		{Node: "remote", Event: "reply", Hits: 1, Seq: 3},
		{Node: "origin", Event: "reply", Hits: 1, Seq: 12},
	}})
	out := b.String()
	for _, want := range []string{"\n  remote received peer=origin\n", "\n  remote reply hits=1\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("remote spans lost their indentation:\n%s", out)
		}
	}
}

func TestRenderTraceEmpty(t *testing.T) {
	var b strings.Builder
	renderTrace(&b, &response{OK: true})
	if !strings.Contains(b.String(), "no trace returned") {
		t.Fatalf("output = %q", b.String())
	}
}

func TestParseMetrics(t *testing.T) {
	in := `# HELP sdpd_requests_total requests handled
# TYPE sdpd_requests_total counter
sdpd_requests_total 42
sdpd_request_seconds_bucket{le="0.001"} 7
sdpd_healthy 1
garbage line with three fields
`
	m, err := parseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m["sdpd_requests_total"] != 42 || m["sdpd_healthy"] != 1 {
		t.Fatalf("parsed = %v", m)
	}
	if _, ok := m[`sdpd_request_seconds_bucket{le="0.001"}`]; ok {
		t.Fatal("labeled series leaked into the plain map")
	}
}

// TestRunHealth drives the health command against a fake daemon gateway:
// healthy and unhealthy verdicts, plus the probe detail in the output.
func TestRunHealth(t *testing.T) {
	body := `{"healthy":true,"ready":false,"probes":[{"name":"store","ok":true},{"name":"peers","ok":false,"err":"no backbone peers known"}]}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)

	var b strings.Builder
	healthy, err := runHealth(&b, ts.Listener.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !healthy || !strings.Contains(out, "healthy=ok ready=FAIL") {
		t.Fatalf("verdicts wrong (healthy=%v):\n%s", healthy, out)
	}
	if !strings.Contains(out, "no backbone peers known") {
		t.Fatalf("probe detail lost:\n%s", out)
	}

	body = `{"healthy":false,"ready":false,"probes":[{"name":"backbone","ok":false,"err":"transport: udp: closed"}]}`
	b.Reset()
	healthy, err = runHealth(&b, ts.Listener.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if healthy || !strings.Contains(b.String(), "transport: udp: closed") {
		t.Fatalf("unhealthy daemon misreported:\n%s", b.String())
	}
}

// TestRunTop scrapes two fake daemons — one serving metrics, one dead —
// and checks both land in the table without aborting it.
func TestRunTop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("sdpd_requests_total 9\ndiscovery_forwards_sent_total 4\nsdpd_healthy 1\n"))
	}))
	t.Cleanup(ts.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := dead.Listener.Addr().String()
	dead.Close()

	var b strings.Builder
	runTop(&b, []string{ts.Listener.Addr().String(), deadAddr}, time.Second)
	out := b.String()
	if !strings.Contains(out, "DAEMON") || !strings.Contains(out, "REQS") {
		t.Fatalf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows:\n%s", out)
	}
	if !strings.Contains(lines[1], "9") || !strings.Contains(lines[1], "4") {
		t.Fatalf("live daemon's counters missing:\n%s", out)
	}
	if !strings.Contains(lines[2], "down") {
		t.Fatalf("dead daemon not marked down:\n%s", out)
	}
}

// TestRunServices drives the paginated listing against a fake gateway
// that forces two pages, then the -name history view, then a 404.
func TestRunServices(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.URL.Path == "/services" && r.URL.Query().Get("cursor") == "":
			w.Write([]byte(`{"services":[{"name":"CameraService","version":1},{"name":"MediaWorkstation","version":3}],"next_cursor":"MediaWorkstation","total":3}`))
		case r.URL.Path == "/services":
			w.Write([]byte(`{"services":[{"name":"PrinterService","version":1}],"next_cursor":"","total":3}`))
		case r.URL.Path == "/services/MediaWorkstation":
			w.Write([]byte(`{"name":"MediaWorkstation","live":true,"versions":[{"version":1},{"version":2},{"version":3}]}`))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	addr := ts.Listener.Addr().String()

	var b strings.Builder
	if err := runServices(&b, addr, "", 2, time.Second); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CameraService", "MediaWorkstation", "PrinterService", "v3", "3 live service(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := runServices(&b, addr, "MediaWorkstation", 0, time.Second); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	if !strings.Contains(out, "live, 3 version(s)") || !strings.Contains(out, "v3  (current)") {
		t.Fatalf("history view wrong:\n%s", out)
	}

	if err := runServices(&b, addr, "NoSuchService", 0, time.Second); err == nil {
		t.Fatal("missing service should error")
	}
}

// TestRunTenantsEnvelope pins the wire shape runTenants parses: the
// gateway wraps the admission table in the protocol envelope under its
// "tenants" key, and the bearer token must ride the Authorization
// header.
func TestRunTenantsEnvelope(t *testing.T) {
	var gotAuth string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/tenants" {
			t.Errorf("path = %s", r.URL.Path)
		}
		gotAuth = r.Header.Get("Authorization")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true,"tenants":{"enforcing":true,"auth":"hmac",` +
			`"limits":{"rate_per_sec":5,"burst":10,"max_live_services":200},` +
			`"tenants":[{"tenant":"alice","live_services":1,"publishes_total":3,` +
			`"publishes_this_minute":2,"rate_limited_total":4,"denied_total":1,"rate_tokens":1.5}]}}`))
	}))
	defer ts.Close()

	var buf strings.Builder
	addr := strings.TrimPrefix(ts.URL, "http://")
	if err := runTenants(&buf, addr, "tok123", time.Second); err != nil {
		t.Fatal(err)
	}
	if gotAuth != "Bearer tok123" {
		t.Fatalf("Authorization = %q", gotAuth)
	}
	out := buf.String()
	for _, want := range []string{
		"enforcing via hmac",
		"rate 5/s burst 10",
		"max 200 live services",
		"alice",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	row := findLine(t, out, "alice")
	for _, col := range []string{"1", "3", "2", "4"} {
		if !strings.Contains(row, col) {
			t.Fatalf("alice row missing %q: %s", col, row)
		}
	}
}

// findLine returns the line of out containing needle.
func findLine(t *testing.T, out, needle string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, needle) {
			return line
		}
	}
	t.Fatalf("no line contains %q:\n%s", needle, out)
	return ""
}
