package main

import (
	"strings"
	"time"
	"testing"
)

func TestRenderQueryComplete(t *testing.T) {
	var b strings.Builder
	renderQuery(&b, &response{OK: true, Hits: []hit{
		{Service: "MediaWorkstation", Capability: "PlayMovie", Provider: "ws-1", Distance: 3},
	}})
	out := b.String()
	if !strings.Contains(out, "MediaWorkstation") || !strings.Contains(out, "PlayMovie") {
		t.Fatalf("output lost the hit:\n%s", out)
	}
	if strings.Contains(out, "partial") {
		t.Fatalf("complete result rendered a partial marker:\n%s", out)
	}
}

func TestRenderQueryPartialWithHits(t *testing.T) {
	var b strings.Builder
	renderQuery(&b, &response{
		OK:          true,
		Hits:        []hit{{Service: "MediaWorkstation", Capability: "PlayMovie", Provider: "ws-1", Distance: 3}},
		Partial:     true,
		Unreachable: []string{"n4", "n9"},
	})
	out := b.String()
	if !strings.Contains(out, "partial result: n4, n9 unreachable") {
		t.Fatalf("partial marker missing:\n%s", out)
	}
	if !strings.Contains(out, "MediaWorkstation") {
		t.Fatalf("partial result dropped usable hits:\n%s", out)
	}
}

func TestRenderQueryPartialEmpty(t *testing.T) {
	var b strings.Builder
	renderQuery(&b, &response{OK: true, Partial: true, Unreachable: []string{"n2"}})
	out := b.String()
	if !strings.Contains(out, "no matching service") || !strings.Contains(out, "n2 unreachable") {
		t.Fatalf("empty partial result must say both 'nothing found' and 'coverage was incomplete':\n%s", out)
	}
}

func TestRenderQueryEmptyComplete(t *testing.T) {
	var b strings.Builder
	renderQuery(&b, &response{OK: true})
	if got := b.String(); got != "no matching service\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestRenderPeers(t *testing.T) {
	var b strings.Builder
	renderPeers(&b, &response{OK: true, Peers: []peer{
		{Addr: "127.0.0.1:8475", LastAnnounce: time.Now().Add(-time.Second), HasSummary: true, Entries: 2, Failures: 1},
		{Addr: "127.0.0.1:8476"},
	}})
	out := b.String()
	if !strings.Contains(out, "127.0.0.1:8475") || !strings.Contains(out, "127.0.0.1:8476") {
		t.Fatalf("output lost a peer:\n%s", out)
	}
	if !strings.Contains(out, "no summary") || !strings.Contains(out, "never") {
		t.Fatalf("summary-less seed not marked:\n%s", out)
	}
}

func TestRenderPeersEmpty(t *testing.T) {
	var b strings.Builder
	renderPeers(&b, &response{OK: true})
	if !strings.Contains(b.String(), "no backbone peers") {
		t.Fatalf("output = %q", b.String())
	}
}
