// Command sdpctl is the client for a sdpd directory node: it publishes
// Amigo-S service advertisements, resolves semantic queries, uploads
// ontologies, and inspects directory state over UDP.
//
// Usage:
//
//	sdpctl -server localhost:7474 register service.xml
//	sdpctl -server localhost:7474 query request.xml
//	sdpctl -server localhost:7474 ontology media.xml
//	sdpctl -server localhost:7474 deregister MediaWorkstation
//	sdpctl -server localhost:7474 stats
//	sdpctl -server localhost:7474 peers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"strings"
	"time"
)

type request struct {
	Op   string `json:"op"`
	Doc  string `json:"doc,omitempty"`
	Name string `json:"name,omitempty"`
}

type hit struct {
	Service    string `json:"Service"`
	Capability string `json:"Capability"`
	Provider   string `json:"Provider"`
	Distance   int    `json:"Distance"`
	Directory  string `json:"Directory"`
}

type response struct {
	OK          bool     `json:"ok"`
	Error       string   `json:"error,omitempty"`
	Code        string   `json:"code,omitempty"`
	Hits        []hit    `json:"hits,omitempty"`
	Partial     bool     `json:"partial,omitempty"`
	Unreachable []string `json:"unreachable,omitempty"`
	Stats       *struct {
		Capabilities int      `json:"capabilities"`
		Ontologies   []string `json:"ontologies"`
	} `json:"stats,omitempty"`
	Peers []peer          `json:"peers,omitempty"`
	Table json.RawMessage `json:"table,omitempty"`
}

// peer mirrors sdpd's peerEntry: the daemon's protocol-level view of one
// backbone peer, with socket stats when the transport tracks them.
type peer struct {
	Addr         string    `json:"addr"`
	LastAnnounce time.Time `json:"last_announce"`
	Failures     int       `json:"failures"`
	HasSummary   bool      `json:"has_summary"`
	Entries      int       `json:"entries"`
	Transport    *struct {
		FramesSent     uint64 `json:"frames_sent"`
		FramesReceived uint64 `json:"frames_received"`
		BytesSent      uint64 `json:"bytes_sent"`
		BytesReceived  uint64 `json:"bytes_received"`
	} `json:"transport,omitempty"`
}

func main() {
	server := flag.String("server", "localhost:7474", "sdpd address")
	timeout := flag.Duration("timeout", 3*time.Second, "reply timeout")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "sdpctl: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	logger := slog.With("component", "ctl")
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	var req request
	switch args[0] {
	case "register", "query", "ontology":
		if len(args) != 2 {
			usage()
		}
		doc, err := os.ReadFile(args[1])
		if err != nil {
			fatal("read document", "err", err)
		}
		op := args[0]
		if op == "ontology" {
			op = "add-ontology"
		}
		req = request{Op: op, Doc: string(doc)}
	case "deregister":
		if len(args) != 2 {
			usage()
		}
		req = request{Op: "deregister", Name: args[1]}
	case "table":
		if len(args) != 2 {
			usage()
		}
		req = request{Op: "get-table", Name: args[1]}
	case "stats":
		req = request{Op: "stats"}
	case "peers":
		req = request{Op: "peers"}
	default:
		usage()
	}

	resp, err := send(*server, *timeout, req)
	if err != nil {
		fatal("request failed", "server", *server, "err", err)
	}
	if !resp.OK {
		fatal("server error", "code", resp.Code, "err", resp.Error)
	}
	switch args[0] {
	case "query":
		renderQuery(os.Stdout, resp)
	case "stats":
		fmt.Printf("capabilities: %d\n", resp.Stats.Capabilities)
		for _, u := range resp.Stats.Ontologies {
			fmt.Printf("ontology: %s\n", u)
		}
	case "table":
		fmt.Println(string(resp.Table))
	case "peers":
		renderPeers(os.Stdout, resp)
	default:
		fmt.Println("ok")
	}
}

// renderPeers prints the daemon's live backbone view: who it federates
// with, how fresh their announcements are, whether their content
// summaries are held, and how many forwards to them were abandoned.
func renderPeers(w io.Writer, resp *response) {
	if len(resp.Peers) == 0 {
		fmt.Fprintln(w, "no backbone peers")
		return
	}
	fmt.Fprintf(w, "%-24s %-16s %-10s %-8s %s\n", "PEER", "LAST-ANNOUNCE", "ENTRIES", "GIVEUPS", "TRAFFIC")
	for _, p := range resp.Peers {
		last := "never"
		if !p.LastAnnounce.IsZero() {
			last = time.Since(p.LastAnnounce).Round(time.Millisecond).String() + " ago"
		}
		entries := "no summary"
		if p.HasSummary {
			entries = fmt.Sprintf("%d", p.Entries)
		}
		traffic := "-"
		if p.Transport != nil {
			traffic = fmt.Sprintf("%dB out / %dB in", p.Transport.BytesSent, p.Transport.BytesReceived)
		}
		fmt.Fprintf(w, "%-24s %-16s %-10s %-8d %s\n", p.Addr, last, entries, p.Failures, traffic)
	}
}

// renderQuery prints a query reply, surfacing the server's completeness
// marker: a partial result is still shown (graceful degradation), but
// the user is told which backbone directories never answered so they can
// retry once the network heals.
func renderQuery(w io.Writer, resp *response) {
	if len(resp.Hits) == 0 {
		if resp.Partial {
			fmt.Fprintf(w, "no matching service (partial result: %s unreachable — retry may find more)\n",
				strings.Join(resp.Unreachable, ", "))
			return
		}
		fmt.Fprintln(w, "no matching service")
		return
	}
	fmt.Fprintf(w, "%-24s %-24s %-20s %s\n", "SERVICE", "CAPABILITY", "PROVIDER", "DISTANCE")
	for _, h := range resp.Hits {
		fmt.Fprintf(w, "%-24s %-24s %-20s %d\n", h.Service, h.Capability, h.Provider, h.Distance)
	}
	if resp.Partial {
		fmt.Fprintf(w, "partial result: %s unreachable — more services may exist\n",
			strings.Join(resp.Unreachable, ", "))
	}
}

func send(server string, timeout time.Duration, req request) (*response, error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(data); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("waiting for reply: %w", err)
	}
	var resp response
	if err := json.Unmarshal(buf[:n], &resp); err != nil {
		return nil, fmt.Errorf("malformed reply: %w", err)
	}
	return &resp, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sdpctl [-server host:port] <command>
commands:
  register <service.xml>    publish an Amigo-S advertisement
  deregister <name>         withdraw a service
  query <request.xml>       resolve the required capabilities
  ontology <ontology.xml>   upload an ontology (classified+encoded server-side)
  table <ontology-uri>      fetch the encoded code table for an ontology
  stats                     show directory state
  peers                     show the daemon's directory backbone view`)
	os.Exit(2)
}
