// Command sdpctl is the client for a sdpd directory node: it publishes
// Amigo-S service advertisements, resolves semantic queries, uploads
// ontologies, and inspects directory state over UDP.
//
// Usage:
//
//	sdpctl -server localhost:7474 register service.xml
//	sdpctl -server localhost:7474 query request.xml
//	sdpctl -server localhost:7474 ontology media.xml
//	sdpctl -server localhost:7474 deregister MediaWorkstation
//	sdpctl -server localhost:7474 stats
//	sdpctl -server localhost:7474 peers
//	sdpctl -server localhost:7474 trace request.xml
//	sdpctl health localhost:8080
//	sdpctl services localhost:8080
//	sdpctl services -name MediaWorkstation localhost:8080
//	sdpctl top localhost:8080 localhost:8081 localhost:8082
//	sdpctl top -watch 2s localhost:8080 localhost:8081
//	sdpctl watch -metric discovery_query_seconds localhost:8080
//	sdpctl watch -since 30m -metric store_append_seconds localhost:8080
//	sdpctl alerts localhost:8080
//
// Against a daemon with tenant admission enabled, mint a token and
// publish into your namespace:
//
//	sdpctl login -secret $SDP_SECRET -tenant alice -ttl 24h
//	sdpctl -token $TOKEN publish service.xml
//	sdpctl tenants -token $ADMIN_TOKEN localhost:8080
//
// login mints a self-describing HMAC token client-side (no daemon round
// trip); publish qualifies the advertisement name with the token's tenant
// prefix before registering, so `service.xml` can keep a bare name. The
// -token flag (or SDP_TOKEN) rides along on every other command too.
//
// trace resolves a query with hop-level tracing on and renders the
// cross-daemon span tree; health, top and tenants talk to daemons' HTTP
// gateways instead of the UDP control port.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sariadne/internal/profile"
	"sariadne/internal/tenant"
)

type request struct {
	Op    string `json:"op"`
	Doc   string `json:"doc,omitempty"`
	Name  string `json:"name,omitempty"`
	Token string `json:"token,omitempty"`
	Trace bool   `json:"trace,omitempty"`
}

type hit struct {
	Service    string `json:"Service"`
	Capability string `json:"Capability"`
	Provider   string `json:"Provider"`
	Distance   int    `json:"Distance"`
	Directory  string `json:"Directory"`
}

type response struct {
	OK          bool     `json:"ok"`
	Error       string   `json:"error,omitempty"`
	Code        string   `json:"code,omitempty"`
	Hits        []hit    `json:"hits,omitempty"`
	Partial     bool     `json:"partial,omitempty"`
	Unreachable []string `json:"unreachable,omitempty"`
	Stats       *struct {
		Capabilities int      `json:"capabilities"`
		Ontologies   []string `json:"ontologies"`
	} `json:"stats,omitempty"`
	Peers   []peer          `json:"peers,omitempty"`
	Table   json.RawMessage `json:"table,omitempty"`
	TraceID uint64          `json:"trace_id,omitempty"`
	Spans   []span          `json:"spans,omitempty"`
}

// span mirrors telemetry.Span: one hop-level event recorded by a
// directory while the traced query crossed the backbone.
type span struct {
	Trace  uint64        `json:"trace"`
	Node   string        `json:"node"`
	Event  string        `json:"event"`
	Peer   string        `json:"peer,omitempty"`
	Hits   int           `json:"hits,omitempty"`
	Dur    time.Duration `json:"dur,omitempty"`
	Seq    uint64        `json:"seq"`
	Time   time.Time     `json:"time,omitzero"`
	Reason string        `json:"reason,omitempty"`
}

// peer mirrors sdpd's peerEntry: the daemon's protocol-level view of one
// backbone peer, with socket stats when the transport tracks them.
type peer struct {
	Addr         string    `json:"addr"`
	LastAnnounce time.Time `json:"last_announce"`
	Failures     int       `json:"failures"`
	HasSummary   bool      `json:"has_summary"`
	Entries      int       `json:"entries"`
	Transport    *struct {
		FramesSent     uint64 `json:"frames_sent"`
		FramesReceived uint64 `json:"frames_received"`
		BytesSent      uint64 `json:"bytes_sent"`
		BytesReceived  uint64 `json:"bytes_received"`
	} `json:"transport,omitempty"`
}

func main() {
	server := flag.String("server", "localhost:7474", "sdpd address")
	timeout := flag.Duration("timeout", 3*time.Second, "reply timeout")
	token := flag.String("token", os.Getenv("SDP_TOKEN"), "bearer token for daemons with admission enabled (default $SDP_TOKEN)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "sdpctl: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	logger := slog.With("component", "ctl")
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	// health, top and tenants speak HTTP to daemon gateways, not UDP to
	// -server; login is entirely client-side.
	switch args[0] {
	case "login":
		loginFlags := flag.NewFlagSet("login", flag.ExitOnError)
		secret := loginFlags.String("secret", os.Getenv("SDP_SECRET"), "shared HMAC secret, >= 16 bytes (default $SDP_SECRET)")
		tenantName := loginFlags.String("tenant", "", "tenant namespace the token publishes as")
		role := loginFlags.String("role", "publisher", "role claimed by the token: reader, publisher or admin")
		ttl := loginFlags.Duration("ttl", 24*time.Hour, "token lifetime (0 = never expires)")
		loginFlags.Parse(args[1:]) //nolint:errcheck // ExitOnError
		if loginFlags.NArg() != 0 || *tenantName == "" {
			usage()
		}
		tok, err := runLogin(*secret, *tenantName, *role, *ttl)
		if err != nil {
			fatal("login failed", "err", err)
		}
		fmt.Println(tok)
		return
	case "tenants":
		tenFlags := flag.NewFlagSet("tenants", flag.ExitOnError)
		tenToken := tenFlags.String("token", *token, "admin bearer token (default the global -token / $SDP_TOKEN)")
		tenFlags.Parse(args[1:]) //nolint:errcheck // ExitOnError
		if tenFlags.NArg() != 1 {
			usage()
		}
		if err := runTenants(os.Stdout, tenFlags.Arg(0), *tenToken, *timeout); err != nil {
			fatal("tenants listing failed", "addr", tenFlags.Arg(0), "err", err)
		}
		return
	case "health":
		if len(args) != 2 {
			usage()
		}
		ok, err := runHealth(os.Stdout, args[1], *timeout)
		if err != nil {
			fatal("health check failed", "addr", args[1], "err", err)
		}
		if !ok {
			os.Exit(1)
		}
		return
	case "top":
		topFlags := flag.NewFlagSet("top", flag.ExitOnError)
		watch := topFlags.Duration("watch", 0, "re-render the table at this interval (0 = once)")
		count := topFlags.Int("count", 0, "with -watch, stop after this many renders (0 = forever)")
		topFlags.Parse(args[1:]) //nolint:errcheck // ExitOnError
		if topFlags.NArg() < 1 {
			usage()
		}
		runTopWatch(os.Stdout, topFlags.Args(), *timeout, *watch, *count)
		return
	case "watch":
		watchFlags := flag.NewFlagSet("watch", flag.ExitOnError)
		metric := watchFlags.String("metric", "discovery_query_seconds", "histogram metric to window")
		interval := watchFlags.Duration("interval", time.Second, "scrape cadence")
		count := watchFlags.Int("count", 0, "stop after this many scrapes (0 = forever)")
		since := watchFlags.Duration("since", 0, "first print this span of persisted history from GET /timeseries (journal-backed daemons serve it across restarts)")
		watchFlags.Parse(args[1:]) //nolint:errcheck // ExitOnError
		if watchFlags.NArg() != 1 {
			usage()
		}
		if *since > 0 {
			if err := runWatchHistory(os.Stdout, watchFlags.Arg(0), *metric, *timeout, *since); err != nil {
				fatal("history fetch failed", "addr", watchFlags.Arg(0), "err", err)
			}
		}
		runWatch(os.Stdout, watchFlags.Arg(0), *metric, *timeout, *interval, *count)
		return
	case "alerts":
		if len(args) != 2 {
			usage()
		}
		quiet, err := runAlerts(os.Stdout, args[1], *timeout)
		if err != nil {
			fatal("alerts fetch failed", "addr", args[1], "err", err)
		}
		if !quiet {
			os.Exit(1)
		}
		return
	case "services":
		svcFlags := flag.NewFlagSet("services", flag.ExitOnError)
		limit := svcFlags.Int("limit", 100, "page size for the paginated listing")
		name := svcFlags.String("name", "", "show one advertisement's full version history instead")
		svcFlags.Parse(args[1:]) //nolint:errcheck // ExitOnError
		if svcFlags.NArg() != 1 {
			usage()
		}
		if err := runServices(os.Stdout, svcFlags.Arg(0), *name, *limit, *timeout); err != nil {
			fatal("services listing failed", "addr", svcFlags.Arg(0), "err", err)
		}
		return
	}

	var req request
	switch args[0] {
	case "register", "publish", "query", "ontology", "trace":
		if len(args) != 2 {
			usage()
		}
		doc, err := os.ReadFile(args[1])
		if err != nil {
			fatal("read document", "err", err)
		}
		switch args[0] {
		case "ontology":
			req = request{Op: "add-ontology", Doc: string(doc)}
		case "trace":
			req = request{Op: "query", Doc: string(doc), Trace: true}
		case "publish":
			// publish = register with the advertisement name qualified by
			// the token's tenant namespace, read from the self-describing
			// token — the document keeps its bare name on disk.
			qualified, err := qualifyDoc(doc, *token)
			if err != nil {
				fatal("publish", "err", err)
			}
			req = request{Op: "register", Doc: qualified}
		default:
			req = request{Op: args[0], Doc: string(doc)}
		}
	case "deregister":
		if len(args) != 2 {
			usage()
		}
		req = request{Op: "deregister", Name: args[1]}
	case "table":
		if len(args) != 2 {
			usage()
		}
		req = request{Op: "get-table", Name: args[1]}
	case "stats":
		req = request{Op: "stats"}
	case "peers":
		req = request{Op: "peers"}
	default:
		usage()
	}
	req.Token = *token

	resp, err := send(*server, *timeout, req)
	if err != nil {
		fatal("request failed", "server", *server, "err", err)
	}
	if !resp.OK {
		fatal("server error", "code", resp.Code, "err", resp.Error)
	}
	switch args[0] {
	case "query":
		renderQuery(os.Stdout, resp)
	case "trace":
		renderQuery(os.Stdout, resp)
		renderTrace(os.Stdout, resp)
	case "stats":
		fmt.Printf("capabilities: %d\n", resp.Stats.Capabilities)
		for _, u := range resp.Stats.Ontologies {
			fmt.Printf("ontology: %s\n", u)
		}
	case "table":
		fmt.Println(string(resp.Table))
	case "peers":
		renderPeers(os.Stdout, resp)
	default:
		fmt.Println("ok")
	}
}

// renderPeers prints the daemon's live backbone view: who it federates
// with, how fresh their announcements are, whether their content
// summaries are held, and how many forwards to them were abandoned.
func renderPeers(w io.Writer, resp *response) {
	if len(resp.Peers) == 0 {
		fmt.Fprintln(w, "no backbone peers")
		return
	}
	fmt.Fprintf(w, "%-24s %-16s %-10s %-8s %s\n", "PEER", "LAST-ANNOUNCE", "ENTRIES", "GIVEUPS", "TRAFFIC")
	for _, p := range resp.Peers {
		last := "never"
		if !p.LastAnnounce.IsZero() {
			last = time.Since(p.LastAnnounce).Round(time.Millisecond).String() + " ago"
		}
		entries := "no summary"
		if p.HasSummary {
			entries = fmt.Sprintf("%d", p.Entries)
		}
		traffic := "-"
		if p.Transport != nil {
			traffic = fmt.Sprintf("%dB out / %dB in", p.Transport.BytesSent, p.Transport.BytesReceived)
		}
		fmt.Fprintf(w, "%-24s %-16s %-10s %-8d %s\n", p.Addr, last, entries, p.Failures, traffic)
	}
}

// renderQuery prints a query reply, surfacing the server's completeness
// marker: a partial result is still shown (graceful degradation), but
// the user is told which backbone directories never answered so they can
// retry once the network heals.
func renderQuery(w io.Writer, resp *response) {
	if len(resp.Hits) == 0 {
		if resp.Partial {
			fmt.Fprintf(w, "no matching service (partial result: %s unreachable — retry may find more)\n",
				strings.Join(resp.Unreachable, ", "))
			return
		}
		fmt.Fprintln(w, "no matching service")
		return
	}
	fmt.Fprintf(w, "%-24s %-24s %-20s %s\n", "SERVICE", "CAPABILITY", "PROVIDER", "DISTANCE")
	for _, h := range resp.Hits {
		fmt.Fprintf(w, "%-24s %-24s %-20s %d\n", h.Service, h.Capability, h.Provider, h.Distance)
	}
	if resp.Partial {
		fmt.Fprintf(w, "partial result: %s unreachable — more services may exist\n",
			strings.Join(resp.Unreachable, ", "))
	}
}

// renderTrace prints the hop tree of a traced query: spans in recorded
// order, indented by forwarding depth so the cross-daemon fan-out reads
// like a call tree. The origin daemon sits at depth zero; every forward
// or hedge span pushes its target one level deeper.
func renderTrace(w io.Writer, resp *response) {
	if resp.TraceID == 0 || len(resp.Spans) == 0 {
		fmt.Fprintln(w, "no trace returned (daemon predates tracing?)")
		return
	}
	spans := make([]span, len(resp.Spans))
	copy(spans, resp.Spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })

	// Depths come from forward/hedge edges alone, iterated to a fixpoint:
	// Seq counters are per-process, so a remote daemon's spans can sort
	// before the origin's forward span and a single ordered pass would
	// misfile them at the root. The root is the node no one forwarded to.
	forwarded := map[string]bool{}
	for _, s := range spans {
		if s.Event == "forward" || s.Event == "hedge" {
			forwarded[s.Peer] = true
		}
	}
	root := spans[0].Node
	for _, s := range spans {
		if !forwarded[s.Node] {
			root = s.Node
			break
		}
	}
	depth := map[string]int{root: 0}
	for changed := true; changed; {
		changed = false
		for _, s := range spans {
			if s.Event != "forward" && s.Event != "hedge" {
				continue
			}
			d, ok := depth[s.Node]
			if !ok {
				continue
			}
			if _, ok := depth[s.Peer]; !ok {
				depth[s.Peer] = d + 1
				changed = true
			}
		}
	}
	nodes := map[string]bool{}
	for _, s := range spans {
		nodes[s.Node] = true
	}
	fmt.Fprintf(w, "trace 0x%x: %d spans across %d directories\n", resp.TraceID, len(spans), len(nodes))
	for _, s := range spans {
		line := strings.Repeat("  ", depth[s.Node]) + s.Node + " " + s.Event
		if s.Peer != "" {
			line += " peer=" + s.Peer
		}
		if s.Event == "local-match" || s.Event == "reply" {
			line += fmt.Sprintf(" hits=%d", s.Hits)
		}
		if s.Reason != "" {
			line += " reason=" + s.Reason
		}
		if s.Dur > 0 {
			line += " dur=" + s.Dur.Round(time.Microsecond).String()
		}
		fmt.Fprintln(w, line)
	}
}

// runServices lists a daemon's live advertisements through the HTTP
// gateway's paginated GET /services, following next_cursor until the
// listing is complete; with -name it fetches one advertisement's version
// ledger instead (withdrawn versions included).
func runServices(w io.Writer, addr, name string, limit int, timeout time.Duration) error {
	client := httpClient(timeout)
	if name != "" {
		resp, err := client.Get("http://" + addr + "/services/" + name)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /services/%s: %s: %s", name, resp.Status, strings.TrimSpace(string(body)))
		}
		var hist struct {
			Name     string `json:"name"`
			Live     bool   `json:"live"`
			Versions []struct {
				Version uint64 `json:"version"`
			} `json:"versions"`
		}
		if err := json.Unmarshal(body, &hist); err != nil {
			return fmt.Errorf("malformed reply: %w", err)
		}
		state := "live"
		if !hist.Live {
			state = "withdrawn"
		}
		fmt.Fprintf(w, "%s: %s, %d version(s)\n", hist.Name, state, len(hist.Versions))
		for _, v := range hist.Versions {
			marker := ""
			if hist.Live && v.Version == hist.Versions[len(hist.Versions)-1].Version {
				marker = "  (current)"
			}
			fmt.Fprintf(w, "  v%d%s\n", v.Version, marker)
		}
		return nil
	}

	type entry struct {
		Name    string `json:"name"`
		Version uint64 `json:"version"`
	}
	var entries []entry
	total := 0
	cursor := ""
	for {
		u := fmt.Sprintf("http://%s/services?limit=%d", addr, limit)
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		resp, err := client.Get(u)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /services: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		var page struct {
			Services   []entry `json:"services"`
			NextCursor string  `json:"next_cursor"`
			Total      int     `json:"total"`
		}
		if err := json.Unmarshal(body, &page); err != nil {
			return fmt.Errorf("malformed reply: %w", err)
		}
		entries = append(entries, page.Services...)
		total = page.Total
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(entries) == 0 {
		fmt.Fprintln(w, "no live services")
		return nil
	}
	fmt.Fprintf(w, "%-32s %s\n", "SERVICE", "VERSION")
	for _, e := range entries {
		fmt.Fprintf(w, "%-32s v%d\n", e.Name, e.Version)
	}
	fmt.Fprintf(w, "%d live service(s)\n", total)
	return nil
}

// httpClient builds a client with the shared request timeout.
func httpClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// runHealth fetches one daemon's /healthz and renders the probe table.
// It reports whether the daemon is healthy so main can exit non-zero for
// scripts; 503 is a verdict, not a transport error.
func runHealth(w io.Writer, addr string, timeout time.Duration) (bool, error) {
	resp, err := httpClient(timeout).Get("http://" + addr + "/healthz")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return false, err
	}
	var st struct {
		Healthy bool      `json:"healthy"`
		Ready   bool      `json:"ready"`
		Checked time.Time `json:"checked"`
		Probes  []struct {
			Name string `json:"name"`
			OK   bool   `json:"ok"`
			Err  string `json:"err"`
		} `json:"probes"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return false, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	renderHealth(w, addr, st.Healthy, st.Ready, func(yield func(name string, ok bool, detail string)) {
		for _, p := range st.Probes {
			yield(p.Name, p.OK, p.Err)
		}
	})
	return st.Healthy, nil
}

// renderHealth prints one daemon's health verdicts and per-probe rows.
func renderHealth(w io.Writer, addr string, healthy, ready bool, probes func(func(name string, ok bool, detail string))) {
	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	fmt.Fprintf(w, "%s: healthy=%s ready=%s\n", addr, verdict(healthy), verdict(ready))
	probes(func(name string, ok bool, detail string) {
		fmt.Fprintf(w, "  %-10s %-5s %s\n", name, verdict(ok), detail)
	})
}

// topColumns are the /metrics series rendered by top, in column order.
// The short header keeps a three-daemon federation on one screen.
var topColumns = []struct{ header, metric string }{
	{"REQS", "sdpd_requests_total"},
	{"ERRS", "sdpd_request_errors_total"},
	{"SERVED", "discovery_queries_served_total"},
	{"FWD", "discovery_forwards_sent_total"},
	{"PRUNED", "discovery_forwards_pruned_total"},
	{"GIVEUP", "discovery_forward_giveups_total"},
	{"PARTIAL", "discovery_partial_replies_total"},
	{"TRACES", "telemetry_recorder_traces_total"},
	{"B-OUT", "transport_bytes_sent_total"},
	{"B-IN", "transport_bytes_received_total"},
	{"HEALTHY", "sdpd_healthy"},
}

// runTop scrapes every daemon's /metrics once and renders the shared
// counters side by side — a federation-wide glance at load, pruning
// effectiveness and degradation. Unreachable daemons get a "down" row
// instead of failing the whole table.
func runTop(w io.Writer, addrs []string, timeout time.Duration) {
	client := httpClient(timeout)
	fmt.Fprintf(w, "%-22s", "DAEMON")
	for _, c := range topColumns {
		fmt.Fprintf(w, " %8s", c.header)
	}
	fmt.Fprintln(w)
	for _, addr := range addrs {
		fmt.Fprintf(w, "%-22s", addr)
		metrics, err := scrapeWithRetry(func() (map[string]float64, error) {
			return scrapeMetrics(client, addr)
		})
		if err != nil {
			fmt.Fprintf(w, " down: %v\n", err)
			continue
		}
		for _, c := range topColumns {
			v, ok := metrics[c.metric]
			if !ok {
				fmt.Fprintf(w, " %8s", "-")
				continue
			}
			fmt.Fprintf(w, " %8s", strconv.FormatFloat(v, 'f', -1, 64))
		}
		fmt.Fprintln(w)
	}
}

// scrapeMetrics fetches one daemon's Prometheus exposition and parses
// the plain (label-free) series into a name->value map.
func scrapeMetrics(client *http.Client, addr string) (map[string]float64, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return parseMetrics(resp.Body)
}

// parseMetrics reads Prometheus text exposition, keeping label-free
// series ("name value") and skipping comments and histogram buckets.
func parseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}

// runLogin mints a self-describing HMAC token entirely client-side; a
// daemon started with the same -auth-secret verifies it without any
// login round trip or shared session state.
func runLogin(secret, tenantName, roleName string, ttl time.Duration) (string, error) {
	if secret == "" {
		return "", fmt.Errorf("login needs -secret (or SDP_SECRET)")
	}
	role, err := tenant.ParseRole(roleName)
	if err != nil {
		return "", err
	}
	return tenant.MintToken([]byte(secret), tenantName, role, ttl, nil)
}

// qualifyDoc rewrites an advertisement's service name under the token's
// tenant namespace (name "ws" with alice's token publishes "alice/ws"),
// so documents can keep bare names on disk. The tenant comes from the
// token's self-describing claims; static tokens are opaque to clients,
// so their holders use plain register with a pre-qualified name.
func qualifyDoc(doc []byte, token string) (string, error) {
	if token == "" {
		return "", fmt.Errorf("publish needs -token (or SDP_TOKEN); mint one with sdpctl login")
	}
	tn, _, ok := tenant.TokenTenant(token)
	if !ok {
		return "", fmt.Errorf("token is not self-describing; use register with a tenant-qualified name instead")
	}
	svc, err := profile.Unmarshal(doc)
	if err != nil {
		return "", fmt.Errorf("parse advertisement: %w", err)
	}
	svc.Name = tenant.Qualify(tn, svc.Name)
	out, err := profile.Marshal(svc)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// tenantsTable mirrors sdpd's tenantsBody: the admission table behind
// GET /tenants and the "tenants" op.
type tenantsTable struct {
	Enforcing bool   `json:"enforcing"`
	Auth      string `json:"auth"`
	Limits    struct {
		RatePerSec            float64 `json:"rate_per_sec"`
		Burst                 int     `json:"burst"`
		MaxLiveServices       int     `json:"max_live_services"`
		MaxPublishesPerMinute int     `json:"max_publishes_per_minute"`
	} `json:"limits"`
	Tenants []struct {
		Tenant              string  `json:"tenant"`
		LiveServices        int     `json:"live_services"`
		PublishesTotal      uint64  `json:"publishes_total"`
		PublishesThisMinute int     `json:"publishes_this_minute"`
		RateLimitedTotal    uint64  `json:"rate_limited_total"`
		DeniedTotal         uint64  `json:"denied_total"`
		RateTokens          float64 `json:"rate_tokens"`
	} `json:"tenants"`
}

// runTenants fetches the admission table from a daemon's HTTP gateway
// (GET /tenants, admin-only) and renders one row per tenant.
func runTenants(w io.Writer, addr, token string, timeout time.Duration) error {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/tenants", nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := httpClient(timeout).Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /tenants: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	// The gateway wraps every reply in the protocol envelope; the
	// admission table sits under its "tenants" key.
	var envelope struct {
		Tenants tenantsTable `json:"tenants"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		return fmt.Errorf("malformed reply: %w", err)
	}
	table := envelope.Tenants
	mode := "open (no admission)"
	if table.Enforcing {
		mode = "enforcing via " + table.Auth
	}
	fmt.Fprintf(w, "%s: %s\n", addr, mode)
	limits := []string{}
	if table.Limits.RatePerSec > 0 {
		limits = append(limits, fmt.Sprintf("rate %g/s burst %d", table.Limits.RatePerSec, table.Limits.Burst))
	}
	if table.Limits.MaxLiveServices > 0 {
		limits = append(limits, fmt.Sprintf("max %d live services", table.Limits.MaxLiveServices))
	}
	if table.Limits.MaxPublishesPerMinute > 0 {
		limits = append(limits, fmt.Sprintf("max %d publishes/min", table.Limits.MaxPublishesPerMinute))
	}
	if len(limits) > 0 {
		fmt.Fprintf(w, "limits: %s\n", strings.Join(limits, ", "))
	}
	if len(table.Tenants) == 0 {
		fmt.Fprintln(w, "no tenants seen")
		return nil
	}
	fmt.Fprintf(w, "%-20s %8s %10s %8s %10s %8s\n", "TENANT", "LIVE", "PUBLISHES", "IN-MIN", "THROTTLED", "DENIED")
	for _, t := range table.Tenants {
		fmt.Fprintf(w, "%-20s %8d %10d %8d %10d %8d\n",
			t.Tenant, t.LiveServices, t.PublishesTotal, t.PublishesThisMinute, t.RateLimitedTotal, t.DeniedTotal)
	}
	return nil
}

func send(server string, timeout time.Duration, req request) (*response, error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(data); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("waiting for reply: %w", err)
	}
	var resp response
	if err := json.Unmarshal(buf[:n], &resp); err != nil {
		return nil, fmt.Errorf("malformed reply: %w", err)
	}
	return &resp, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sdpctl [-server host:port] <command>
commands:
  register <service.xml>    publish an Amigo-S advertisement
  publish <service.xml>     like register, but first qualify the service name
                            with the -token's tenant namespace (alice/ws)
  login -secret S -tenant T [-role publisher] [-ttl 24h]
                            mint an HMAC bearer token for daemons with
                            -auth-secret admission (printed to stdout)
  tenants [-token T] <http-addr>
                            show a daemon's admission table (admin token)
  deregister <name>         withdraw a service
  query <request.xml>       resolve the required capabilities
  trace <request.xml>       resolve with tracing on and render the hop tree
  ontology <ontology.xml>   upload an ontology (classified+encoded server-side)
  table <ontology-uri>      fetch the encoded code table for an ontology
  stats                     show directory state
  peers                     show the daemon's directory backbone view
  health <http-addr>        fetch a daemon's /healthz probe report (exit 1 if unhealthy)
  services [-limit N] [-name svc] <http-addr>
                            list live advertisements (paginated GET /services), or
                            one advertisement's version history with -name
  top [-watch 2s] [-count N] <http-addr>...
                            scrape several daemons' /metrics into one table,
                            optionally re-rendered at an interval
  watch [-metric discovery_query_seconds] [-interval 1s] [-count N] [-since 30m] <http-addr>
                            stream windowed p50/p95/p99/p999 of one histogram
                            metric (each row covers ops since the last scrape);
                            -since first prints persisted history, surviving
                            daemon restarts when the daemon journals telemetry
  alerts <http-addr>        show the drift watchdog's active and fired alerts
                            (exit 1 while any alert is active)`)
	os.Exit(2)
}
