package main

import (
	"strings"
	"testing"
	"time"

	"sariadne/internal/gen"
	"sariadne/internal/telemetry"
)

func smallRun(scenario string) runConfig {
	return runConfig{
		scenario:    scenario,
		seed:        42,
		nodes:       4,
		services:    24,
		ontologies:  6,
		ops:         150,
		warmupOps:   15,
		concurrency: 4,
		sample:      50 * time.Millisecond,
		faultScale:  500 * time.Millisecond,
		// Short enough that churned-away queries fail fast instead of
		// serializing the mixed run behind full discovery timeouts.
		opTimeout: 400 * time.Millisecond,
	}
}

// TestFlashCrowdDeterministic is the acceptance criterion: two runs of
// `sdpload -scenario flash-crowd -seed 42` must produce byte-identical
// reports once wall-clock sections are stripped.
func TestFlashCrowdDeterministic(t *testing.T) {
	r1, err := runLoad(smallRun("flash-crowd"))
	if err != nil {
		t.Fatal(err)
	}
	telemetry.Default().Reset()
	r2, err := runLoad(smallRun("flash-crowd"))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := r1.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r2.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(c1) != string(c2) {
		t.Fatalf("same-seed flash-crowd runs diverge:\n%s\nvs\n%s", c1, c2)
	}
	if r1.Results.Failed != 0 || r1.Results.OK != 150 {
		t.Fatalf("fault-free run did not complete cleanly: %+v", r1.Results)
	}
	if r1.Schedule.HotService == "" || r1.Schedule.HotQueryOps == 0 {
		t.Fatalf("flash crowd scheduled no hot queries: %+v", r1.Schedule)
	}
	if len(r1.Points) == 0 || r1.Points[0].Series != "query" {
		t.Fatalf("missing query point: %+v", r1.Points)
	}
	if r1.Points[0].P999Nanos < r1.Points[0].P50Nanos {
		t.Fatalf("quantiles not monotone: %+v", r1.Points[0])
	}
}

// TestBuildPlanDeterministic pins the plan generator itself: same seed,
// same ops, byte-for-byte — independent of any cluster.
func TestBuildPlanDeterministic(t *testing.T) {
	build := func() ([]plannedOp, string) {
		w := gen.MustNewWorkload(gen.WorkloadConfig{Ontologies: 6, Services: 24, Seed: 7})
		plan, sched, err := buildPlan(scenarios["mixed"], w, 4, 200, 20, 7)
		if err != nil {
			t.Fatal(err)
		}
		if sched.PublishOps+sched.QueryOps+sched.ChurnOps != 200 {
			t.Fatalf("schedule does not sum to ops: %+v", sched)
		}
		var sb strings.Builder
		for _, op := range plan {
			sb.WriteString(string(rune('a'+int(op.kind))) + string(op.doc))
		}
		return plan, sb.String()
	}
	p1, d1 := build()
	p2, d2 := build()
	if len(p1) != len(p2) || d1 != d2 {
		t.Fatal("same-seed plans diverge")
	}
}

// TestMixedScenarioRuns exercises publish and churn paths end to end.
func TestMixedScenarioRuns(t *testing.T) {
	telemetry.Default().Reset()
	rep, err := runLoad(smallRun("mixed"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedule.PublishOps == 0 || rep.Schedule.QueryOps == 0 {
		t.Fatalf("mixed plan missing a series: %+v", rep.Schedule)
	}
	total := rep.Results.OK + rep.Results.Empty + rep.Results.Failed
	if total != 150 {
		t.Fatalf("outcome tallies %d, want 150: %+v", total, rep.Results)
	}
}

// TestUnknownScenarioRejected keeps the CLI error path honest.
func TestUnknownScenarioRejected(t *testing.T) {
	if _, err := runLoad(smallRun("no-such-scenario")); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
