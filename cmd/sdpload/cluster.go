package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"sort"
	"time"

	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/election"
	"sariadne/internal/gen"
	"sariadne/internal/simnet"
)

// driver abstracts the system under load: an in-process simnet federation
// or a live sdpd cluster addressed over the wire.
type driver interface {
	// publish registers (or lease-refreshes) an advertisement from the
	// given issuing-node index.
	publish(ctx context.Context, node int, doc []byte) error
	// query resolves a request and reports hit and unreachable counts.
	query(ctx context.Context, node int, doc []byte) (hits, unreachable int, err error)
	// churn crashes or restarts a node (no-op on live clusters).
	churn(node int, down bool)
	close()
}

// cluster is the simnet-backed driver: a grid of discovery nodes with
// self-elected directories, the same substrate sdpsim drives.
type cluster struct {
	net   *simnet.Network
	ids   []simnet.NodeID
	nodes []*discovery.Node
}

// gridDims picks the smallest near-square grid holding at least n nodes.
func gridDims(n int) (rows, cols int) {
	rows = int(math.Sqrt(float64(n)))
	if rows < 1 {
		rows = 1
	}
	cols = (n + rows - 1) / rows
	return rows, cols
}

// buildCluster boots rows x cols discovery nodes, waits for directory
// elections to settle, and preloads every workload service (node i%N
// publishes service i), so measurement starts against a warm directory
// backbone with summaries exchanged.
func buildCluster(w *gen.Workload, reg *codes.Registry, rows, cols int, seed int64) (*cluster, error) {
	nw := simnet.New(simnet.Config{Seed: seed})
	eps, err := simnet.BuildGrid(nw, "n", rows, cols)
	if err != nil {
		nw.Close()
		return nil, err
	}
	cfg := discovery.Config{
		QueryTimeout:     time.Second,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		AnnounceInterval: 50 * time.Millisecond,
		// Unbounded forwarding keeps hit sets independent of which nodes
		// won their elections, so fault-free runs are reproducible.
		MaxForwardPeers: 0,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   80 * time.Millisecond,
			CandidacyWait:     30 * time.Millisecond,
		},
	}
	c := &cluster{net: nw}
	for _, ep := range eps {
		id := ep.ID()
		nc := cfg
		nc.Election.Score = func() election.Score {
			return election.Score{Coverage: len(nw.Neighbors(id)), Resources: 0.5, Willing: true}
		}
		n := discovery.NewNode(ep, discovery.NewSemanticBackend(reg), nc)
		n.Start(context.Background())
		c.ids = append(c.ids, id)
		c.nodes = append(c.nodes, n)
	}
	if err := c.settle(10 * time.Second); err != nil {
		c.close()
		return nil, err
	}
	if err := c.preload(w); err != nil {
		c.close()
		return nil, err
	}
	return c, nil
}

// settle waits until every node knows a directory.
func (c *cluster) settle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := 0
		for _, n := range c.nodes {
			if _, ok := n.DirectoryID(); ok {
				ready++
			}
		}
		if ready == len(c.nodes) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d/%d nodes without a directory after %s",
				len(c.nodes)-ready, len(c.nodes), timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// preload publishes every workload service round-robin across the nodes,
// retrying while elections finish re-homing registrations.
func (c *cluster) preload(w *gen.Workload) error {
	for i, doc := range w.ServiceDocs {
		node := c.nodes[i%len(c.nodes)]
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			err = node.Publish(ctx, doc)
			cancel()
			if err == nil {
				break
			}
		}
		if err != nil {
			return fmt.Errorf("cluster: preload service %d: %w", i, err)
		}
	}
	return nil
}

func (c *cluster) publish(ctx context.Context, node int, doc []byte) error {
	return c.nodes[node%len(c.nodes)].Publish(ctx, doc)
}

func (c *cluster) query(ctx context.Context, node int, doc []byte) (int, int, error) {
	res, err := c.nodes[node%len(c.nodes)].DiscoverResult(ctx, doc)
	if err != nil {
		return 0, 0, err
	}
	return len(res.Hits), len(res.Unreachable), nil
}

func (c *cluster) churn(node int, down bool) {
	c.net.SetNodeDown(c.ids[node%len(c.ids)], down)
}

func (c *cluster) close() {
	for _, n := range c.nodes {
		n.Stop()
	}
	c.net.Close()
}

// liveCluster drives real sdpd daemons over their UDP client protocol
// (the sdpctl wire format): each op dials its own ephemeral socket so
// concurrent workers cannot cross replies.
type liveCluster struct {
	targets []string
	timeout time.Duration
	token   string // bearer token for daemons with tenant admission
}

func newLiveCluster(targets []string, timeout time.Duration, token string) *liveCluster {
	sort.Strings(targets)
	return &liveCluster{targets: targets, timeout: timeout, token: token}
}

// clientRequest/clientResponse mirror sdpd's datagram protocol.
type clientRequest struct {
	Op    string `json:"op"`
	Doc   string `json:"doc,omitempty"`
	Token string `json:"token,omitempty"`
}

type clientResponse struct {
	OK          bool     `json:"ok"`
	Error       string   `json:"error,omitempty"`
	Hits        []any    `json:"hits,omitempty"`
	Unreachable []string `json:"unreachable,omitempty"`
}

func (l *liveCluster) send(node int, req clientRequest) (*clientResponse, error) {
	req.Token = l.token
	addr := l.targets[node%len(l.targets)]
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(l.timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(data); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	var resp clientResponse
	if err := json.Unmarshal(buf[:n], &resp); err != nil {
		return nil, fmt.Errorf("malformed reply: %w", err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("server error: %s", resp.Error)
	}
	return &resp, nil
}

func (l *liveCluster) publish(_ context.Context, node int, doc []byte) error {
	_, err := l.send(node, clientRequest{Op: "register", Doc: string(doc)})
	return err
}

func (l *liveCluster) query(_ context.Context, node int, doc []byte) (int, int, error) {
	resp, err := l.send(node, clientRequest{Op: "query", Doc: string(doc)})
	if err != nil {
		return 0, 0, err
	}
	return len(resp.Hits), len(resp.Unreachable), nil
}

func (l *liveCluster) churn(int, bool) {} // cannot crash remote daemons

func (l *liveCluster) close() {}
