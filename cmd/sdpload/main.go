// Command sdpload is the load and soak harness: it drives seeded mixed
// workloads (publish/query/churn, zipfian popularity) against an
// in-process simnet federation or a live sdpd cluster, samples the
// telemetry registry at a fixed cadence, and emits a
// BENCH_load_<scenario>.json report holding end-of-run points plus
// warmup-trimmed p50/p95/p99/p999 curves. Scenario families beyond the
// paper's steady-state figures: flash-crowd, thundering-herd, brownout,
// and mobile-churn — the soak family, which -duration cycles open-loop
// for hours while -check-alerts gates on the daemons' drift watchdogs.
//
// The report's canonical half (scenario, seed, config, schedule, results)
// is a pure function of -scenario and -seed: running
//
//	sdpload -scenario flash-crowd -seed 42
//
// twice yields byte-identical files once wall-clock sections are
// stripped — the property `make slo-check` and CI lean on.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sdpload [flags]

Drive a seeded load scenario and write BENCH_load_<scenario>.json.

Scenarios: %s

Flags:
`, strings.Join(scenarioNames(), ", "))
	flag.PrintDefaults()
}

func main() {
	var cfg runConfig
	var out string
	flag.StringVar(&cfg.scenario, "scenario", "mixed", "scenario family to run")
	flag.Int64Var(&cfg.seed, "seed", 42, "seed for workload, plan and topology")
	flag.IntVar(&cfg.nodes, "nodes", 9, "grid nodes (simnet mode)")
	flag.IntVar(&cfg.services, "services", 60, "advertised services")
	flag.IntVar(&cfg.ontologies, "ontologies", 12, "ontology pool size")
	flag.IntVar(&cfg.ops, "ops", 600, "total planned operations")
	flag.IntVar(&cfg.warmupOps, "warmup", -1, "warmup ops excluded from points (-1 = ops/10)")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "closed-loop worker count")
	flag.Float64Var(&cfg.ratePerSec, "rate", 0, "open-loop arrival rate in ops/sec (0 = closed loop)")
	flag.DurationVar(&cfg.duration, "duration", 0, "soak mode: cycle the plan open-loop for this long instead of a fixed op count (0 = off; default rate 20/s when -rate unset)")
	checkAlerts := flag.String("check-alerts", "", "comma-separated HTTP gateway addrs whose drift watchdogs must stay silent during the run (fires -> exit 1)")
	flag.DurationVar(&cfg.sample, "sample", 250*time.Millisecond, "telemetry sampling cadence")
	flag.DurationVar(&cfg.faultScale, "fault-scale", 2*time.Second, "nominal run length fault windows scale against")
	flag.StringVar(&cfg.target, "target", "", "comma-separated live sdpd addrs (empty = in-process simnet)")
	flag.StringVar(&cfg.token, "token", os.Getenv("SDP_TOKEN"), "bearer token for live daemons with tenant admission (default $SDP_TOKEN)")
	flag.DurationVar(&cfg.opTimeout, "timeout", 2*time.Second, "per-operation timeout")
	flag.StringVar(&out, "out", "", "report path (default BENCH_load_<scenario>.json)")
	flag.Usage = usage
	flag.Parse()

	if cfg.warmupOps < 0 {
		cfg.warmupOps = cfg.ops / 10
	}
	if cfg.duration > 0 && cfg.ratePerSec == 0 {
		// A soak without an explicit rate gets modest open-loop pressure:
		// the point is hours of sustained load, not saturation.
		cfg.ratePerSec = 20
	}
	if out == "" {
		out = fmt.Sprintf("BENCH_load_%s.json", cfg.scenario)
	}
	var gates []string
	var baseline map[string]int
	if *checkAlerts != "" {
		gates = strings.Split(*checkAlerts, ",")
		var err error
		if baseline, err = snapshotAlerts(gates, cfg.opTimeout); err != nil {
			fmt.Fprintf(os.Stderr, "sdpload: alert gate: %v\n", err)
			os.Exit(1)
		}
	}

	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpload: %v\n", err)
		os.Exit(1)
	}
	if err := rep.WriteFile(out); err != nil {
		fmt.Fprintf(os.Stderr, "sdpload: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sdpload: %s seed=%d ops=%d ok=%d empty=%d failed=%d partial=%d -> %s\n",
		rep.Scenario, rep.Seed, rep.Config.Ops,
		rep.Results.OK, rep.Results.Empty, rep.Results.Failed, rep.Results.Partial, out)
	for _, p := range rep.Points {
		fmt.Printf("  %-8s reps=%-5d %8.1f ops/s  p50=%s p95=%s p99=%s p999=%s\n",
			p.Series, p.Reps, p.OpsPerSec,
			time.Duration(p.P50Nanos), time.Duration(p.P95Nanos),
			time.Duration(p.P99Nanos), time.Duration(p.P999Nanos))
	}
	if len(gates) > 0 {
		bad, err := checkAlertGate(gates, baseline, cfg.opTimeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdpload: alert gate: %v\n", err)
			os.Exit(1)
		}
		if len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "sdpload: drift alerts during the run:\n")
			for _, line := range bad {
				fmt.Fprintf(os.Stderr, "  %s\n", line)
			}
			os.Exit(1)
		}
		fmt.Printf("sdpload: alert gate clean across %d daemon(s)\n", len(gates))
	}
}
