package main

// Soak alert gate: -check-alerts polls daemons' GET /alerts around the
// run, so a soak fails loudly when a drift watchdog fired — not only
// when latency regressed. The gate snapshots each daemon's fired count
// before the run and flags growth, so alerts from before the run don't
// fail it.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// gateAlert is the slice of telemetry.Alert's wire form the gate reads.
type gateAlert struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Evidence string `json:"evidence"`
}

// gateView mirrors sdpd's GET /alerts reply.
type gateView struct {
	Watching bool        `json:"watching"`
	Active   []gateAlert `json:"active"`
	Fired    []gateAlert `json:"fired"`
}

func fetchAlerts(addr string, timeout time.Duration) (gateView, error) {
	var v gateView
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/alerts")
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return v, err
	}
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("GET /alerts: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return v, fmt.Errorf("malformed /alerts reply: %w", err)
	}
	return v, nil
}

// snapshotAlerts records each gate daemon's fired-alert count before the
// run starts.
func snapshotAlerts(addrs []string, timeout time.Duration) (map[string]int, error) {
	base := make(map[string]int, len(addrs))
	for _, addr := range addrs {
		v, err := fetchAlerts(addr, timeout)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", addr, err)
		}
		if !v.Watching {
			return nil, fmt.Errorf("%s: no drift watchdog (start the daemon with -watch-every)", addr)
		}
		base[addr] = len(v.Fired)
	}
	return base, nil
}

// checkAlertGate re-polls the gate daemons after the run and returns one
// violation line per alert that fired during it (newest first in the
// recorder, so the first len-baseline entries are the new ones) plus any
// alert still active now.
func checkAlertGate(addrs []string, baseline map[string]int, timeout time.Duration) ([]string, error) {
	var bad []string
	for _, addr := range addrs {
		v, err := fetchAlerts(addr, timeout)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", addr, err)
		}
		if newFired := len(v.Fired) - baseline[addr]; newFired > 0 {
			for _, a := range v.Fired[:newFired] {
				bad = append(bad, fmt.Sprintf("%s: fired %s (%s): %s", addr, a.Code, a.Severity, a.Evidence))
			}
		}
		for _, a := range v.Active {
			bad = append(bad, fmt.Sprintf("%s: active %s (%s): %s", addr, a.Code, a.Severity, a.Evidence))
		}
	}
	return bad, nil
}
