package main

import "sariadne/internal/telemetry"

// Load-generator metrics, registered at init so the telemetry sampler's
// time-series ring can window them at cadence. The *_seconds histograms
// are the series the emitted curves and SLO points derive from.
var (
	publishSeconds = telemetry.NewHistogram("loadgen_publish_seconds",
		"end-to-end latency of one load-generated publish op")
	querySeconds = telemetry.NewHistogram("loadgen_query_seconds",
		"end-to-end latency of one load-generated query op")
	opsTotal = telemetry.NewCounter("loadgen_ops_total",
		"load-generated ops completed (all kinds, warmup included)")
	opErrorsTotal = telemetry.NewCounter("loadgen_op_errors_total",
		"load-generated ops that returned an error")
)
