package main

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sariadne/internal/codes"
	"sariadne/internal/gen"
	"sariadne/internal/slo"
	"sariadne/internal/telemetry"
)

// runConfig carries every knob of one load run.
type runConfig struct {
	scenario    string
	seed        int64
	nodes       int
	services    int
	ontologies  int
	ops         int
	warmupOps   int
	concurrency int
	ratePerSec  float64       // >0 switches to open-loop pacing
	duration    time.Duration // >0 cycles the plan open-loop until the deadline (soak mode)
	sample      time.Duration
	faultScale  time.Duration
	target      string // comma-separated sdpd addrs; empty = simnet
	token       string // bearer token for live daemons with admission on
	opTimeout   time.Duration
}

// engine executes a pre-generated op plan against a driver, tallying
// outcomes and feeding the loadgen_* histograms the sampler windows.
type engine struct {
	cfg  runConfig
	drv  driver
	plan []plannedOp

	wg   sync.WaitGroup
	once sync.Once

	mu           sync.Mutex
	results      slo.Results
	downNodes    map[int]bool
	publishNanos []int64 // non-warmup publish latencies
	queryNanos   []int64 // non-warmup query latencies
	measureStart time.Time
}

// runLoad is the whole tentpole in one call: generate the deterministic
// plan, boot (or dial) the cluster, arm the fault schedule, execute the
// plan under a telemetry sampler, and assemble the report.
func runLoad(cfg runConfig) (*slo.Report, error) {
	spec, ok := scenarios[cfg.scenario]
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (have: %s)",
			cfg.scenario, strings.Join(scenarioNames(), ", "))
	}
	w, err := gen.NewWorkload(gen.WorkloadConfig{
		Ontologies: cfg.ontologies,
		Services:   cfg.services,
		Seed:       cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		return nil, err
	}
	plan, sched, err := buildPlan(spec, w, cfg.nodes, cfg.ops, cfg.warmupOps, cfg.seed)
	if err != nil {
		return nil, err
	}

	rep := &slo.Report{
		Schema:   slo.Schema,
		Scenario: spec.name,
		Seed:     cfg.seed,
		Config: slo.Config{
			Nodes:       cfg.nodes,
			Topology:    "grid",
			Services:    cfg.services,
			Ontologies:  cfg.ontologies,
			Mode:        "closed",
			Concurrency: cfg.concurrency,
			RatePerSec:  cfg.ratePerSec,
			Ops:         cfg.ops,
			WarmupOps:   cfg.warmupOps,
			SampleMs:    cfg.sample.Milliseconds(),
			DurationMs:  cfg.duration.Milliseconds(),
			ZipfSkew:    spec.zipfSkew,
			Target:      cfg.target,
		},
	}
	if cfg.ratePerSec > 0 || cfg.duration > 0 {
		rep.Config.Mode = "open"
	}

	var drv driver
	if cfg.target != "" {
		rep.Config.Topology = "live"
		drv = newLiveCluster(strings.Split(cfg.target, ","), cfg.opTimeout, cfg.token)
	} else {
		rows, cols := gridDims(cfg.nodes)
		c, err := buildCluster(w, reg, rows, cols, cfg.seed)
		if err != nil {
			return nil, err
		}
		if spec.faults != nil {
			plan, names := spec.faults(c, cfg.faultScale)
			c.net.ApplyFaultPlan(plan)
			sched.Faults = names
		}
		drv = c
	}
	defer drv.close()
	rep.Schedule = sched

	e := &engine{cfg: cfg, drv: drv, plan: plan, downNodes: make(map[int]bool)}

	// Reset clears accumulated preload/settle observations so every ring
	// window holds only load-generated traffic.
	telemetry.Default().Reset()
	sampler := telemetry.StartSampler(telemetry.Default(), cfg.sample, 4096)
	started := time.Now()
	e.measureStart = started

	if cfg.duration > 0 {
		e.runOpenTimed(cfg.duration)
	} else if cfg.ratePerSec > 0 {
		e.runOpen()
	} else {
		e.runClosed()
	}

	sampler.Stop()
	elapsed := time.Since(started)
	rep.Results = e.results
	rep.Wall = slo.Wall{StartedAt: started.UTC(), DurationMs: elapsed.Milliseconds()}

	measured := time.Since(e.measureStart)
	rep.Points = e.points(measured)
	warmup := e.measureStart.Sub(started)
	for _, series := range []struct{ name, metric string }{
		{"query", "loadgen_query_seconds"},
		{"publish", "loadgen_publish_seconds"},
	} {
		for _, p := range telemetry.QuantileCurve(sampler.Ring().Samples(), series.metric, warmup) {
			if p.Count == 0 {
				continue
			}
			rep.Curve = append(rep.Curve, slo.CurvePoint{
				Series:    series.name,
				ElapsedMs: p.Elapsed.Milliseconds(),
				WindowMs:  p.Window.Milliseconds(),
				Count:     p.Count,
				RatePerS:  p.Rate,
				P50Nanos:  int64(p.P50 * 1e9),
				P95Nanos:  int64(p.P95 * 1e9),
				P99Nanos:  int64(p.P99 * 1e9),
				P999Nanos: int64(p.P999 * 1e9),
			})
		}
	}
	return rep, nil
}

// runClosed keeps cfg.concurrency workers saturated: each finishes one op
// before pulling the next, so offered load adapts to service time.
func (e *engine) runClosed() {
	idx := make(chan int)
	workers := e.cfg.concurrency
	if workers < 1 {
		workers = 1
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker(idx)
	}
	for i := range e.plan {
		idx <- i
	}
	close(idx)
	e.wg.Wait()
}

func (e *engine) worker(idx <-chan int) {
	defer e.wg.Done()
	for i := range idx {
		e.execute(e.plan[i])
	}
}

// runOpen issues ops at a fixed rate regardless of completion — the
// queueing-delay view a closed loop hides. Each op runs in its own
// goroutine; slow responses pile up instead of throttling arrivals.
func (e *engine) runOpen() {
	interval := time.Duration(float64(time.Second) / e.cfg.ratePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := range e.plan {
		<-tick.C
		e.wg.Add(1)
		go e.dispatch(e.plan[i])
	}
	e.wg.Wait()
}

// runOpenTimed is soak mode: cycle the plan at the open-loop rate until
// the deadline, so a 90-second smoke and an overnight soak share one
// seeded plan. Only the first pass carries warmup ops; repeats are all
// measured.
func (e *engine) runOpenTimed(d time.Duration) {
	interval := time.Duration(float64(time.Second) / e.cfg.ratePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for n := 0; ; n++ {
		select {
		case <-deadline.C:
			e.wg.Wait()
			return
		case <-tick.C:
		}
		op := e.plan[n%len(e.plan)]
		if n >= len(e.plan) {
			op.warmup = false
		}
		e.wg.Add(1)
		go e.dispatch(op)
	}
}

func (e *engine) dispatch(op plannedOp) {
	defer e.wg.Done()
	e.execute(op)
}

// execute runs one planned op, records its latency and outcome.
func (e *engine) execute(op plannedOp) {
	if !op.warmup {
		e.markMeasured()
	}
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.opTimeout)
	defer cancel()
	opsTotal.Inc()
	switch op.kind {
	case opPublish:
		start := time.Now()
		err := e.drv.publish(ctx, op.node, op.doc)
		lat := time.Since(start)
		publishSeconds.Observe(lat)
		e.record(op, int64(lat), err, 0, 0)
	case opQuery:
		start := time.Now()
		hits, unreachable, err := e.drv.query(ctx, op.node, op.doc)
		lat := time.Since(start)
		querySeconds.Observe(lat)
		e.record(op, int64(lat), err, hits, unreachable)
	case opChurn:
		e.mu.Lock()
		down := !e.downNodes[op.node]
		e.downNodes[op.node] = down
		e.results.OK++
		e.mu.Unlock()
		e.drv.churn(op.node, down)
	}
}

// markMeasured stamps the start of the measured (post-warmup) phase once.
func (e *engine) markMeasured() {
	e.once.Do(func() {
		e.mu.Lock()
		e.measureStart = time.Now()
		e.mu.Unlock()
	})
}

func (e *engine) record(op plannedOp, nanos int64, err error, hits, unreachable int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case err != nil:
		e.results.Failed++
	case op.kind == opQuery && hits == 0:
		e.results.Empty++
	default:
		e.results.OK++
	}
	if err != nil {
		opErrorsTotal.Inc()
	}
	e.results.Hits += hits
	if unreachable > 0 {
		e.results.Partial++
	}
	if op.warmup {
		return
	}
	if op.kind == opPublish {
		e.publishNanos = append(e.publishNanos, nanos)
	} else {
		e.queryNanos = append(e.queryNanos, nanos)
	}
}

// points aggregates each series' non-warmup latencies into the
// BENCH-schema end-of-run points, with exact nearest-rank percentiles
// (the curve uses bucketed windows; the point is the precise aggregate).
func (e *engine) points(measured time.Duration) []slo.Point {
	var out []slo.Point
	for _, s := range []struct {
		name  string
		nanos []int64
	}{
		{"query", e.queryNanos},
		{"publish", e.publishNanos},
	} {
		if len(s.nanos) == 0 {
			continue
		}
		sorted := append([]int64(nil), s.nanos...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		p := slo.Point{
			Services:  e.cfg.services,
			Series:    s.name,
			Reps:      len(sorted),
			P50Nanos:  exactPercentile(sorted, 0.50),
			P95Nanos:  exactPercentile(sorted, 0.95),
			P99Nanos:  exactPercentile(sorted, 0.99),
			P999Nanos: exactPercentile(sorted, 0.999),
		}
		if secs := measured.Seconds(); secs > 0 {
			p.OpsPerSec = float64(len(sorted)) / secs
		}
		out = append(out, p)
	}
	return out
}

// exactPercentile is the nearest-rank percentile of a sorted slice.
func exactPercentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
