package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sariadne/internal/gen"
	"sariadne/internal/profile"
	"sariadne/internal/simnet"
	"sariadne/internal/slo"
)

// A scenario family shapes the op mix, popularity distribution and fault
// schedule of a run. The three beyond the paper's Fig. 9/10 steady state:
// flash-crowd (one capability suddenly hot), thundering-herd (partition
// heals and the backbone re-announces at once), slow-peer brownout (one
// node's links turn syrupy mid-run).
type scenarioSpec struct {
	name string
	// mix weights in percent; churn toggles node crashes mid-run.
	publishPct, queryPct, churnPct int
	// zipfSkew shapes service popularity (>1; larger = hotter head).
	zipfSkew float64
	// hotShare routes this fraction of queries to one hot service after
	// hotStart of the op stream has passed (flash crowd).
	hotShare, hotStart float64
	// faults builds the scenario's simnet fault plan; windows scale with
	// the -fault-scale flag. Nil means no faults.
	faults func(c *cluster, scale time.Duration) (simnet.FaultPlan, []string)
}

// scenarios is the registry of runnable families.
var scenarios = map[string]*scenarioSpec{
	"mixed": {
		name: "mixed", publishPct: 15, queryPct: 80, churnPct: 5, zipfSkew: 1.1,
	},
	"flash-crowd": {
		name: "flash-crowd", queryPct: 100, zipfSkew: 1.1,
		hotShare: 0.8, hotStart: 0.3,
	},
	"thundering-herd": {
		name: "thundering-herd", publishPct: 10, queryPct: 90, zipfSkew: 1.1,
		faults: herdFaults,
	},
	// mobile-churn is the soak-mode default: pervasive-computing device
	// mobility, where advertisements keep re-publishing and directories
	// keep dropping out and rejoining while the query stream continues.
	// Hours of this shake out the slow leaks a steady state hides, which
	// is exactly what the drift watchdog exists to catch.
	"mobile-churn": {
		name: "mobile-churn", publishPct: 25, queryPct: 55, churnPct: 20, zipfSkew: 1.1,
	},
	"brownout": {
		name: "brownout", queryPct: 100, zipfSkew: 1.1,
		faults: brownoutFaults,
	},
}

// scenarioNames lists the families for usage text, sorted.
func scenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// herdFaults splits the grid into two halves, heals at half the scale,
// and lets the re-announce/republish storm that follows hit the measured
// query stream.
func herdFaults(c *cluster, scale time.Duration) (simnet.FaultPlan, []string) {
	half := len(c.ids) / 2
	left := append([]simnet.NodeID(nil), c.ids[:half]...)
	right := append([]simnet.NodeID(nil), c.ids[half:]...)
	p := simnet.FaultPlan{Partitions: []simnet.Partition{{
		Name:   "herd-split",
		Groups: [][]simnet.NodeID{left, right},
		At:     scale / 4,
		Heal:   scale / 2,
	}}}
	return p, []string{fmt.Sprintf("partition:herd-split@%s..%s", scale/4, scale/2)}
}

// brownoutFaults slows every link touching one central node for the
// whole run (zero Until = forever): the slow peer stays reachable, so
// the retry machinery keeps including it and its latency bleeds into
// the tail quantiles. Always-on rather than windowed so the quantiles
// depend on routing (deterministic) instead of which wall-clock ops
// happen to land inside a window — that keeps the SLO baseline stable
// across machines. scale is unused here; the flag still gates herd.
func brownoutFaults(c *cluster, _ time.Duration) (simnet.FaultPlan, []string) {
	slow := c.ids[len(c.ids)/2]
	var p simnet.FaultPlan
	for _, nb := range c.net.Neighbors(slow) {
		p.Links = append(p.Links,
			simnet.LinkFault{From: nb, To: slow, ExtraLatency: 25 * time.Millisecond},
			simnet.LinkFault{From: slow, To: nb, ExtraLatency: 25 * time.Millisecond},
		)
	}
	return p, []string{fmt.Sprintf("brownout:%s@always", slow)}
}

// opKind discriminates planned ops.
type opKind int

const (
	opPublish opKind = iota
	opQuery
	opChurn
)

// plannedOp is one fully pre-generated operation: the schedule is drawn
// from the seeded RNG before execution starts, so the plan (and every
// derived Schedule statistic) is byte-identical across same-seed runs no
// matter how workers interleave.
type plannedOp struct {
	kind    opKind
	node    int    // issuing node index
	service int    // service index (publish: doc to re-announce; query: request target)
	doc     []byte // pre-marshaled request or advertisement document
	hot     bool   // query targets the flash-crowd hot service
	warmup  bool   // excluded from points; curve trimming uses wall time
}

// buildPlan generates the op schedule for a scenario and summarizes it.
func buildPlan(spec *scenarioSpec, w *gen.Workload, nodes, ops, warmupOps int, seed int64) ([]plannedOp, slo.Schedule, error) {
	rng := rand.New(rand.NewSource(seed))
	services := len(w.Services)
	// NewZipf yields 0..imax with P(k) proportional to (v+k)^-s; small
	// draws are the popular head of the catalogue.
	zipf := rand.NewZipf(rng, spec.zipfSkew, 1, uint64(services-1))
	if zipf == nil {
		return nil, slo.Schedule{}, fmt.Errorf("bad zipf skew %v", spec.zipfSkew)
	}
	hot := int(zipf.Uint64())

	var sched slo.Schedule
	queryCounts := make([]int, services)
	plan := make([]plannedOp, 0, ops)
	for i := 0; i < ops; i++ {
		op := plannedOp{node: rng.Intn(nodes), warmup: i < warmupOps}
		roll := rng.Intn(100)
		switch {
		case roll < spec.publishPct:
			op.kind = opPublish
			op.service = int(zipf.Uint64())
			op.doc = w.ServiceDocs[op.service]
			sched.PublishOps++
		case roll < spec.publishPct+spec.queryPct:
			op.kind = opQuery
			op.service = int(zipf.Uint64())
			if spec.hotShare > 0 && float64(i) >= spec.hotStart*float64(ops) && rng.Float64() < spec.hotShare {
				op.service = hot
				op.hot = true
				sched.HotQueryOps++
			}
			// Request draws from the workload's own RNG stream; calling it
			// here, in plan order, keeps the documents deterministic.
			doc, err := profile.Marshal(&profile.Service{
				Name:     fmt.Sprintf("req%05d", i),
				Required: []*profile.Capability{w.Request(op.service, 1)},
			})
			if err != nil {
				return nil, slo.Schedule{}, err
			}
			op.doc = doc
			queryCounts[op.service]++
			sched.QueryOps++
		default:
			op.kind = opChurn
			// Churn only ever touches the back half of the node range so a
			// crashed corner cannot isolate the whole grid.
			op.node = nodes/2 + rng.Intn(nodes-nodes/2)
			sched.ChurnOps++
		}
		plan = append(plan, op)
	}
	top := 0
	for _, c := range queryCounts {
		if c > top {
			top = c
		}
	}
	if sched.QueryOps > 0 {
		sched.TopShareMilli = top * 1000 / sched.QueryOps
	}
	if spec.hotShare > 0 {
		sched.HotService = w.Services[hot].Name
	}
	return plan, sched, nil
}
