package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"sariadne/internal/profile"
)

// expositionLine matches the Prometheus text format 0.0.4: comments or
// `name{labels} value` samples. The same shape `make metrics-smoke`
// enforces against a live sdpd.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-z][a-z0-9_]* .+|[a-z][a-z0-9_]*(\{le="[^"]+"\})? [0-9.eE+-]+|[a-z][a-z0-9_]*(\{le="\+Inf"\}) [0-9]+)$`)

func TestMetricsEndpointExposition(t *testing.T) {
	ts, _ := newGatewayServer(t)

	// Generate some traffic so phase timers and request counters move.
	resp, _ := do(t, "POST", ts.URL+"/services", mustDoc(t, profile.WorkstationService()))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /services = %d", resp.StatusCode)
	}
	resp, _ = do(t, "POST", ts.URL+"/query", mustDoc(t, profile.PDAService()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query = %d", resp.StatusCode)
	}

	resp, body := do(t, "GET", ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	// The acceptance surface: front-end counters, the ontology phase
	// timers (Figure 2), registry histograms, and discovery gauges all on
	// one page.
	for _, name := range []string{
		"sdpd_requests_total",
		"sdpd_request_seconds_count",
		"ontology_parse_seconds_sum",
		"ontology_classify_seconds_count",
		"profile_parse_seconds_count",
		"registry_insert_seconds_bucket",
		"registry_query_seconds_count",
		"registry_entries",
		"match_encoded_ops_total",
		"discovery_bloom_false_positive_rate",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	ts, _ := newGatewayServer(t)
	resp, body := do(t, "GET", ts.URL+"/debug/vars", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("debug vars not JSON: %v", err)
	}
	if _, ok := vars["sdpd_requests_total"]; !ok {
		t.Fatal("sdpd_requests_total missing from /debug/vars")
	}
	if _, ok := vars["registry_insert_seconds"]; !ok {
		t.Fatal("registry_insert_seconds missing from /debug/vars")
	}
}

// TestPprofGatedByFlag: the profiling endpoints exist only when asked for.
func TestPprofGatedByFlag(t *testing.T) {
	srv := newTestServer(t)
	off := httptest.NewServer(newHTTPGateway(srv, false))
	t.Cleanup(off.Close)
	resp, _ := do(t, "GET", off.URL+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag = %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(newHTTPGateway(srv, true))
	t.Cleanup(on.Close)
	resp, body := do(t, "GET", on.URL+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag = %d: %s", resp.StatusCode, body)
	}
}

// TestResponseCodes pins the machine-readable error codes the HTTP status
// mapping relies on.
func TestResponseCodes(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name     string
		datagram []byte
		want     string
	}{
		{"malformed json", []byte("{nope"), codeBadRequest},
		{"unknown op", mustJSON(t, request{Op: "fly"}), codeBadRequest},
		{"bad register doc", mustJSON(t, request{Op: "register", Doc: "junk"}), codeBadRequest},
		{"bad query doc", mustJSON(t, request{Op: "query", Doc: "junk"}), codeBadRequest},
		{"missing service", mustJSON(t, request{Op: "deregister", Name: "Nope"}), codeNotFound},
		{"missing table", mustJSON(t, request{Op: "get-table", Name: "http://nope"}), codeNotFound},
	}
	for _, c := range cases {
		resp := s.handle(c.datagram)
		if resp.OK || resp.Code != c.want {
			t.Errorf("%s: ok=%v code=%q, want code %q", c.name, resp.OK, resp.Code, c.want)
		}
	}
	if resp := s.handle(mustJSON(t, request{Op: "stats"})); !resp.OK || resp.Code != "" {
		t.Errorf("stats: ok=%v code=%q, want success without code", resp.OK, resp.Code)
	}
}
