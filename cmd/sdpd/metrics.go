package main

import "sariadne/internal/telemetry"

// Front-end instruments: one request = one datagram or one gateway call,
// both funneled through server.handle. Layer-level timers (parse,
// classify, match, registry insert) live in the internal packages and
// show up on the same /metrics page.
var (
	requestsTotal = telemetry.NewCounter("sdpd_requests_total",
		"requests handled across the UDP and HTTP front ends")
	requestErrorsTotal = telemetry.NewCounter("sdpd_request_errors_total",
		"requests rejected with an error code")
	requestSeconds = telemetry.NewHistogram("sdpd_request_seconds",
		"end-to-end handling latency of one request")
	partialRepliesTotal = telemetry.NewCounter("sdpd_partial_replies_total",
		"query replies served with an incomplete-coverage marker")
	healthyGauge = telemetry.NewBoolGauge("sdpd_healthy",
		"latest health probe verdict: store, gateway and backbone transport all up")
	readyGauge = telemetry.NewBoolGauge("sdpd_ready",
		"latest readiness verdict: healthy and a backbone peer heard recently")
)
