package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/profile"
	"sariadne/internal/telemetry"
	"sariadne/internal/testutil"
)

func newGatewayServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	srv := newTestServer(t)
	ts := httptest.NewServer(newHTTPGateway(srv, false))
	t.Cleanup(ts.Close)
	return ts, srv
}

func do(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(payload)
}

func TestHTTPGatewayLifecycle(t *testing.T) {
	ts, _ := newGatewayServer(t)

	resp, _ := do(t, "POST", ts.URL+"/services", mustDoc(t, profile.WorkstationService()))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /services = %d", resp.StatusCode)
	}

	resp, body := do(t, "POST", ts.URL+"/query", mustDoc(t, profile.PDAService()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query = %d: %s", resp.StatusCode, body)
	}
	var qr response
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Hits) != 1 || qr.Hits[0].Distance != 3 {
		t.Fatalf("hits = %+v", qr.Hits)
	}

	resp, body = do(t, "GET", ts.URL+"/stats", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"capabilities":2`) {
		t.Fatalf("GET /stats = %d: %s", resp.StatusCode, body)
	}

	resp, body = do(t, "GET", ts.URL+"/tables?uri="+url.QueryEscape(profile.MediaOntologyURI), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tables = %d: %s", resp.StatusCode, body)
	}
	var tr response
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if _, err := codes.UnmarshalTable(tr.Table); err != nil {
		t.Fatalf("shipped table invalid: %v", err)
	}

	resp, _ = do(t, "DELETE", ts.URL+"/services/MediaWorkstation", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	resp, _ = do(t, "DELETE", ts.URL+"/services/MediaWorkstation", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPGatewayPartialQuery: the REST front end serves the same
// completeness marker as the UDP one — a degraded backbone shows up in
// the JSON body, not as an error status.
func TestHTTPGatewayPartialQuery(t *testing.T) {
	ts, srv := newGatewayServer(t)
	resp, _ := do(t, "POST", ts.URL+"/services", mustDoc(t, profile.WorkstationService()))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /services = %d", resp.StatusCode)
	}
	srv.mu.Lock()
	local := srv.resolve
	srv.resolve = func(doc []byte, traced bool) (discovery.Result, error) {
		res, err := local(doc, traced)
		res.Unreachable = append(res.Unreachable, "n7")
		return res, err
	}
	srv.mu.Unlock()

	resp, body := do(t, "POST", ts.URL+"/query", mustDoc(t, profile.PDAService()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query = %d: %s", resp.StatusCode, body)
	}
	var qr response
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Hits) != 1 {
		t.Fatalf("hits = %+v", qr.Hits)
	}
	if !qr.Partial || len(qr.Unreachable) != 1 || qr.Unreachable[0] != "n7" {
		t.Fatalf("completeness marker lost over HTTP: %s", body)
	}
}

// TestHTTPServicesListing drives the versioned registry API over HTTP:
// cursor pagination, per-name version history, supersede-on-republish.
func TestHTTPServicesListing(t *testing.T) {
	ts, _ := newGatewayServer(t)
	for i := 0; i < 5; i++ {
		svc := profile.WorkstationService()
		svc.Name = fmt.Sprintf("svc-%02d", i)
		resp, body := do(t, "POST", ts.URL+"/services", mustDoc(t, svc))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /services %d = %d: %s", i, resp.StatusCode, body)
		}
		var rr response
		if err := json.Unmarshal([]byte(body), &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Version != 1 {
			t.Fatalf("assigned version = %d, want 1", rr.Version)
		}
	}
	// Supersede one: its version bumps, the listing shows the new version.
	svc := profile.WorkstationService()
	svc.Name = "svc-02"
	_, body := do(t, "POST", ts.URL+"/services", mustDoc(t, svc))
	var rr response
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Version != 2 {
		t.Fatalf("superseding version = %d, want 2", rr.Version)
	}

	// Page through with limit 2: three pages, sorted, no duplicates.
	var listed []string
	cursor := ""
	for {
		u := ts.URL + "/services?limit=2"
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		resp, body := do(t, "GET", u, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /services = %d: %s", resp.StatusCode, body)
		}
		var page struct {
			Services []struct {
				Name    string `json:"name"`
				Version uint64 `json:"version"`
			} `json:"services"`
			NextCursor string `json:"next_cursor"`
			Total      int    `json:"total"`
		}
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatal(err)
		}
		if page.Total != 5 {
			t.Fatalf("total = %d, want 5", page.Total)
		}
		for _, e := range page.Services {
			listed = append(listed, e.Name)
			if e.Name == "svc-02" && e.Version != 2 {
				t.Fatalf("superseded entry lists version %d, want 2", e.Version)
			}
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(listed) != 5 {
		t.Fatalf("paged listing returned %d entries: %v", len(listed), listed)
	}

	// Version history of the superseded name: both versions listable.
	resp, body := do(t, "GET", ts.URL+"/services/svc-02", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /services/svc-02 = %d: %s", resp.StatusCode, body)
	}
	var hist struct {
		Name     string `json:"name"`
		Live     bool   `json:"live"`
		Versions []struct {
			Version uint64 `json:"version"`
		} `json:"versions"`
	}
	if err := json.Unmarshal([]byte(body), &hist); err != nil {
		t.Fatal(err)
	}
	if !hist.Live || len(hist.Versions) != 2 || hist.Versions[0].Version != 1 || hist.Versions[1].Version != 2 {
		t.Fatalf("history = %s", body)
	}

	// Deregistration withdraws from the listing but keeps history.
	if resp, _ := do(t, "DELETE", ts.URL+"/services/svc-02", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	_, body = do(t, "GET", ts.URL+"/services", "")
	if strings.Contains(body, `"svc-02"`) {
		t.Fatalf("withdrawn service still listed: %s", body)
	}
	resp, body = do(t, "GET", ts.URL+"/services/svc-02", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"live":false`) {
		t.Fatalf("withdrawn history = %d: %s", resp.StatusCode, body)
	}

	// Unknown name and bad limit are client errors.
	if resp, _ := do(t, "GET", ts.URL+"/services/never-was", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown service = %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/services?limit=zero", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPGatewayErrors(t *testing.T) {
	ts, _ := newGatewayServer(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/services", "", http.StatusBadRequest},
		{"POST", "/services", "garbage", http.StatusBadRequest},
		{"POST", "/query", "garbage", http.StatusBadRequest},
		{"POST", "/ontologies", "garbage", http.StatusBadRequest},
		{"GET", "/tables?uri=http://unknown.example", "", http.StatusNotFound},
		{"GET", "/tables", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := do(t, c.method, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestHTTPGatewayOntologyUpload(t *testing.T) {
	ts, srv := newGatewayServer(t)
	doc := `<ontology uri="http://new.example/ont" version="1"><class name="Thing"/></ontology>`
	resp, _ := do(t, "POST", ts.URL+"/ontologies", doc)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /ontologies = %d", resp.StatusCode)
	}
	if _, ok := srv.reg.Resolve("http://new.example/ont"); !ok {
		t.Fatal("uploaded ontology not encoded")
	}
}

// TestGetTimeseries exercises the sampling ring end to end: requests
// flow through the gateway, the sampler snapshots the registry, and
// GET /timeseries returns windowed quantile curves for the latency
// histograms — plus 404 when sampling is off.
func TestGetTimeseries(t *testing.T) {
	ts, srv := newGatewayServer(t)

	// Sampling disabled: the endpoint must say so, not serve zeros.
	resp, body := do(t, "GET", ts.URL+"/timeseries", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled sampling: status %d body %q", resp.StatusCode, body)
	}

	sampler := telemetry.StartSampler(telemetry.Default(), 10*time.Millisecond, 64)
	t.Cleanup(sampler.Stop)
	srv.sampler = sampler

	// Drive real requests through the front end so sdpd_request_seconds
	// accumulates observations for the ring to window.
	for i := 0; i < 5; i++ {
		do(t, "GET", ts.URL+"/stats", "")
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		return sampler.Ring().Len() >= 3
	}, "sampler never accumulated windows")

	resp, body = do(t, "GET", ts.URL+"/timeseries", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
	var out struct {
		Samples int `json:"samples"`
		Series  map[string][]struct {
			Count     uint64 `json:"count"`
			WindowMs  int64  `json:"window_ms"`
			P50Nanos  int64  `json:"p50_ns"`
			P999Nanos int64  `json:"p999_ns"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("malformed /timeseries body: %v\n%s", err, body)
	}
	if out.Samples < 3 {
		t.Fatalf("samples = %d, want >= 3", out.Samples)
	}
	pts, ok := out.Series["sdpd_request_seconds"]
	if !ok {
		t.Fatalf("sdpd_request_seconds series missing: %s", body)
	}
	var observed uint64
	for _, p := range pts {
		observed += p.Count
		if p.Count > 0 && (p.P50Nanos <= 0 || p.P999Nanos < p.P50Nanos) {
			t.Fatalf("window quantiles wrong: %+v", p)
		}
	}
	if observed == 0 {
		t.Fatalf("no observations landed in any window: %s", body)
	}

	// The metric filter narrows the response to one series.
	_, body = do(t, "GET", ts.URL+"/timeseries?metric=sdpd_request_seconds", "")
	if strings.Contains(body, "discovery_query_seconds") {
		t.Fatalf("?metric filter leaked other series:\n%s", body)
	}
}
