package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"sariadne/internal/profile"
	"sariadne/internal/telemetry"
	"sariadne/internal/testutil"
)

// TestTracedQueryOp: a query with trace:true returns the span tree inline
// and deposits the trace into the flight recorder under the returned ID,
// even on a standalone (unfederated) daemon.
func TestTracedQueryOp(t *testing.T) {
	s := newTestServer(t)
	if resp := s.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())})); !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	resp := s.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService()), Trace: true}))
	if !resp.OK || len(resp.Hits) != 1 {
		t.Fatalf("traced query: %+v", resp)
	}
	if resp.TraceID == 0 || len(resp.Spans) == 0 {
		t.Fatalf("traced query missing trace: id=%d spans=%v", resp.TraceID, resp.Spans)
	}
	for _, s := range resp.Spans {
		if s.Node != localNode || s.Trace != resp.TraceID {
			t.Fatalf("bad standalone span: %+v", s)
		}
	}
	rec, ok := telemetry.FlightRecorder().Trace(resp.TraceID)
	if !ok || rec.Hits != 1 || len(rec.Spans) != len(resp.Spans) {
		t.Fatalf("trace %d not retained properly: %+v, %v", resp.TraceID, rec, ok)
	}

	// Untraced queries carry neither spans nor a trace ID (the default
	// sampler period is far beyond this test's query count).
	resp = s.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService())}))
	if !resp.OK || resp.TraceID != 0 || len(resp.Spans) != 0 {
		t.Fatalf("plain query leaked trace data: %+v", resp)
	}
}

// TestHTTPTraceEndpoints drives the whole trace surface over REST:
// POST /query?trace=1 returns spans inline, GET /traces lists the
// retained trace, GET /traces/{id} resolves it, and bad IDs are client
// errors, not panics.
func TestHTTPTraceEndpoints(t *testing.T) {
	ts, _ := newGatewayServer(t)
	if resp, _ := do(t, "POST", ts.URL+"/services", mustDoc(t, profile.WorkstationService())); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /services = %d", resp.StatusCode)
	}

	resp, body := do(t, "POST", ts.URL+"/query?trace=1", mustDoc(t, profile.PDAService()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query?trace=1 = %d: %s", resp.StatusCode, body)
	}
	var qr response
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID == 0 || len(qr.Spans) == 0 {
		t.Fatalf("traced HTTP query missing trace data: %s", body)
	}

	resp, body = do(t, "GET", ts.URL+"/traces/"+strconv.FormatUint(qr.TraceID, 10), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces/{id} = %d: %s", resp.StatusCode, body)
	}
	var rec telemetry.TraceRecord
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != qr.TraceID || len(rec.Spans) != len(qr.Spans) {
		t.Fatalf("retained trace mismatch: %+v vs %+v", rec, qr)
	}

	resp, body = do(t, "GET", ts.URL+"/traces", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces = %d", resp.StatusCode)
	}
	var listing struct {
		Traces []telemetry.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range listing.Traces {
		if tr.ID == qr.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %d missing from listing of %d", qr.TraceID, len(listing.Traces))
	}

	if resp, _ := do(t, "GET", ts.URL+"/traces/not-a-number", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad trace ID = %d, want 400", resp.StatusCode)
	}
	// Minted IDs always carry a non-zero entropy high word, so a small
	// plain integer can never be retained.
	if resp, _ := do(t, "GET", ts.URL+"/traces/7", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/events", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /events = %d", resp.StatusCode)
	}
}

// TestHealthzStandalone: an unfederated daemon with no HTTP gateway
// configured is healthy and ready out of the box, and the endpoints say
// so with 200s.
func TestHealthzStandalone(t *testing.T) {
	ts, srv := newGatewayServer(t)
	hc := startHealthChecker(srv, 10*time.Millisecond, 0)
	t.Cleanup(hc.close)

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, body := do(t, "GET", ts.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		var st healthState
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if !st.Healthy || !st.Ready || len(st.Probes) == 0 {
			t.Fatalf("GET %s state = %+v", path, st)
		}
	}
}

// TestHealthzFlipsWhenBackboneCloses is the acceptance check for the
// health surface: kill a federated daemon's backbone transport and
// /healthz flips unhealthy within one probe interval.
func TestHealthzFlipsWhenBackboneCloses(t *testing.T) {
	sa, fa := newFederatedServer(t, "udp")
	_, _ = newFederatedServer(t, "udp", string(fa.node.ID()))
	testutil.WaitFor(t, 5*time.Second, func() bool {
		return len(fa.node.Peers()) == 1
	}, "backbone handshake")

	hc := startHealthChecker(sa, 20*time.Millisecond, time.Minute)
	t.Cleanup(hc.close)
	testutil.WaitFor(t, 2*time.Second, func() bool {
		st := hc.state()
		return st.Healthy && st.Ready
	}, "federated daemon never became healthy+ready")

	if err := fa.tr.Close(); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, time.Second, func() bool {
		return !hc.state().Healthy
	}, "healthz did not flip after the backbone transport closed")
	st := hc.state()
	if st.Ready {
		t.Fatalf("unhealthy daemon still ready: %+v", st)
	}
	found := false
	for _, p := range st.Probes {
		if p.Name == "backbone" && !p.OK && p.Err != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failing backbone probe in %+v", st.Probes)
	}
}

// TestReadyzRequiresRecentPeer: a federated daemon with no live peer is
// healthy (its own components work) but not ready (it cannot answer for
// the federation).
func TestReadyzRequiresRecentPeer(t *testing.T) {
	sa, _ := newFederatedServer(t, "udp") // no peers at all
	hc := startHealthChecker(sa, 10*time.Millisecond, 50*time.Millisecond)
	t.Cleanup(hc.close)
	st := hc.state()
	if !st.Healthy || st.Ready {
		t.Fatalf("peerless federated daemon: %+v, want healthy but not ready", st)
	}
}
