package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"sariadne/internal/telemetry"
	"sariadne/internal/tenant"
)

// httpGateway exposes the directory over HTTP for clients that prefer REST
// to the UDP datagram protocol:
//
//	POST /services          body: Amigo-S XML        -> 201 {"version":N}; re-publishing a name supersedes it
//	GET  /services[?limit=N&cursor=name]             -> 200 {"services":[...],"next_cursor":"...","total":N}
//	GET  /services/{name}                            -> 200 {"name":..,"live":..,"versions":[...]} full version ledger
//	DELETE /services/{name}                          -> 204
//	POST /query[?trace=1]   body: Amigo-S XML        -> 200 {"hits":[...]}; trace=1 adds spans inline
//	POST /ontologies        body: ontology XML       -> 201
//	GET  /tables?uri={ontology-uri}                  -> 200 code table JSON
//	GET  /stats                                      -> 200 {"capabilities":..,"ontologies":[..]}
//	GET  /peers                                      -> 200 {"peers":[...]} (federated daemons)
//	GET  /tenants                                    -> 200 admission table: limits + per-tenant usage (admin)
//
// On a daemon with admission enabled (-auth-tokens / -auth-secret) every
// endpoint reads the bearer credential from the Authorization header;
// denials map onto 401 (unauthenticated), 403 (forbidden) and 429 (rate
// limited or over quota).
//	GET  /traces                                     -> 200 {"traces":[...]} flight-recorder listing, newest first
//	GET  /traces/{id}                                -> 200 one retained trace with its span tree
//	GET  /events                                     -> 200 {"events":[...]} protocol events, newest first
//	GET  /healthz                                    -> 200/503 component health report
//	GET  /readyz                                     -> 200/503 readiness (health + fresh backbone peer)
//	GET  /metrics                                    -> 200 Prometheus text exposition
//	GET  /timeseries[?metric={name}&since={dur}]     -> 200 windowed quantile curves (journal-backed with -telemetry-journal)
//	GET  /alerts                                     -> 200 {"watching":..,"active":[...],"fired":[...]} drift-watchdog view
//	GET  /debug/vars                                 -> 200 expvar-style JSON snapshot
//	GET  /debug/pprof/*     (only with -pprof)       -> net/http/pprof
//
// The handler funnels every mutation through the same server.handle path
// as the UDP front end, so journaling and validation behave identically.
type httpGateway struct {
	srv *server
	log *slog.Logger
}

// newHTTPGateway builds the REST mux over a directory server. withPprof
// additionally mounts net/http/pprof under /debug/pprof (off by default:
// profiling endpoints leak heap contents and should be opt-in).
func newHTTPGateway(srv *server, withPprof bool) http.Handler {
	g := &httpGateway{srv: srv, log: slog.With("component", "http")}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /services", g.postServices)
	mux.HandleFunc("GET /services", g.getServices)
	mux.HandleFunc("GET /services/{name}", g.getService)
	mux.HandleFunc("DELETE /services/{name}", g.deleteService)
	mux.HandleFunc("POST /query", g.postQuery)
	mux.HandleFunc("POST /ontologies", g.postOntologies)
	mux.HandleFunc("GET /tables", g.getTable)
	mux.HandleFunc("GET /stats", g.getStats)
	mux.HandleFunc("GET /peers", g.getPeers)
	mux.HandleFunc("GET /tenants", g.getTenants)
	mux.HandleFunc("GET /traces", g.getTraces)
	mux.HandleFunc("GET /traces/{id}", g.getTrace)
	mux.HandleFunc("GET /events", g.getEvents)
	mux.HandleFunc("GET /healthz", g.getHealthz)
	mux.HandleFunc("GET /readyz", g.getReadyz)
	mux.HandleFunc("GET /metrics", g.getMetrics)
	mux.HandleFunc("GET /timeseries", g.getTimeseries)
	mux.HandleFunc("GET /alerts", g.getAlerts)
	mux.HandleFunc("GET /debug/vars", g.getDebugVars)
	if withPprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// httpStatus maps a response error code to an HTTP status.
func httpStatus(code string) int {
	switch code {
	case codeNotFound:
		return http.StatusNotFound
	case codeInternal:
		return http.StatusInternalServerError
	case tenant.CodeUnauthenticated:
		return http.StatusUnauthorized
	case tenant.CodeForbidden:
		return http.StatusForbidden
	case tenant.CodeRateLimited:
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// bearerToken extracts the credential from an Authorization: Bearer
// header ("" when absent), feeding request.Token on every dispatched op.
func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	if tok, ok := strings.CutPrefix(auth, "Bearer "); ok {
		return strings.TrimSpace(tok)
	}
	return ""
}

// authorize gates the handlers that read server state directly instead of
// dispatching an op (the paginated listing, the version ledger): they
// authenticate exactly like dispatched ops, so an enforcing daemon has no
// anonymous side door.
func (g *httpGateway) authorize(w http.ResponseWriter, r *http.Request) bool {
	if _, err := g.srv.gate.Authenticate(bearerToken(r)); err != nil {
		resp := denialResponse(err)
		http.Error(w, resp.Error, httpStatus(resp.Code))
		return false
	}
	return true
}

// dispatch runs a request through the shared handler and writes the reply.
func (g *httpGateway) dispatch(w http.ResponseWriter, req request, okStatus int) {
	data, err := json.Marshal(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := g.srv.handle(data)
	if !resp.OK {
		http.Error(w, resp.Error, httpStatus(resp.Code))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(okStatus)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		g.log.Error("encode reply", "err", err)
	}
}

func readBody(w http.ResponseWriter, r *http.Request) (string, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return "", false
	}
	if len(body) == 0 {
		http.Error(w, "empty body", http.StatusBadRequest)
		return "", false
	}
	return string(body), true
}

func (g *httpGateway) postServices(w http.ResponseWriter, r *http.Request) {
	doc, ok := readBody(w, r)
	if !ok {
		return
	}
	g.dispatch(w, request{Op: "register", Doc: doc, Token: bearerToken(r)}, http.StatusCreated)
}

// getServices pages through the live advertisements: GET
// /services?limit=N&cursor={last-name}. The cursor is the last name of
// the previous page; an empty next_cursor in the reply means the listing
// is complete.
func (g *httpGateway) getServices(w http.ResponseWriter, r *http.Request) {
	if !g.authorize(w, r) {
		return
	}
	limit := 50
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			http.Error(w, "bad limit (want a positive integer)", http.StatusBadRequest)
			return
		}
		limit = min(n, 500)
	}
	cursor := r.URL.Query().Get("cursor")
	g.srv.mu.Lock()
	page := g.srv.listServicesLocked(limit, cursor)
	g.srv.mu.Unlock()
	g.writeJSON(w, http.StatusOK, page)
}

// getService serves one advertisement's version ledger, withdrawn
// versions included.
func (g *httpGateway) getService(w http.ResponseWriter, r *http.Request) {
	if !g.authorize(w, r) {
		return
	}
	name := r.PathValue("name")
	g.srv.mu.Lock()
	h := g.srv.serviceHistoryLocked(name)
	g.srv.mu.Unlock()
	if h == nil {
		http.Error(w, fmt.Sprintf("service %q never registered", name), http.StatusNotFound)
		return
	}
	g.writeJSON(w, http.StatusOK, h)
}

func (g *httpGateway) deleteService(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		http.Error(w, "missing service name", http.StatusBadRequest)
		return
	}
	g.dispatch(w, request{Op: "deregister", Name: name, Token: bearerToken(r)}, http.StatusOK)
}

func (g *httpGateway) postQuery(w http.ResponseWriter, r *http.Request) {
	doc, ok := readBody(w, r)
	if !ok {
		return
	}
	// The body is the raw XML document, so the trace switch rides the
	// query string: POST /query?trace=1.
	traced := r.URL.Query().Get("trace") == "1"
	g.dispatch(w, request{Op: "query", Doc: doc, Trace: traced, Token: bearerToken(r)}, http.StatusOK)
}

func (g *httpGateway) postOntologies(w http.ResponseWriter, r *http.Request) {
	doc, ok := readBody(w, r)
	if !ok {
		return
	}
	g.dispatch(w, request{Op: "add-ontology", Doc: doc, Token: bearerToken(r)}, http.StatusCreated)
}

// getTable takes the ontology URI as a query parameter (URIs contain
// slashes that path routing would normalize away): GET /tables?uri=...
func (g *httpGateway) getTable(w http.ResponseWriter, r *http.Request) {
	uri := r.URL.Query().Get("uri")
	if uri == "" {
		http.Error(w, "missing uri query parameter", http.StatusBadRequest)
		return
	}
	g.dispatch(w, request{Op: "get-table", Name: uri, Token: bearerToken(r)}, http.StatusOK)
}

func (g *httpGateway) getStats(w http.ResponseWriter, r *http.Request) {
	g.dispatch(w, request{Op: "stats", Token: bearerToken(r)}, http.StatusOK)
}

// getPeers serves the live backbone view of a federated daemon.
func (g *httpGateway) getPeers(w http.ResponseWriter, r *http.Request) {
	g.dispatch(w, request{Op: "peers", Token: bearerToken(r)}, http.StatusOK)
}

// getTenants serves the admission table: enforcement mode, configured
// limits, per-tenant usage. Admin role required on an enforcing daemon.
func (g *httpGateway) getTenants(w http.ResponseWriter, r *http.Request) {
	g.dispatch(w, request{Op: "tenants", Token: bearerToken(r)}, http.StatusOK)
}

// writeJSON encodes v with the canonical content type.
func (g *httpGateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		g.log.Error("encode reply", "err", err)
	}
}

// getTraces lists the flight recorder's retained traces, newest first.
func (g *httpGateway) getTraces(w http.ResponseWriter, _ *http.Request) {
	g.writeJSON(w, http.StatusOK, map[string]any{
		"traces": telemetry.FlightRecorder().Traces(),
	})
}

// getTrace serves one retained trace by ID (decimal or 0x-hex).
func (g *httpGateway) getTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 0, 64)
	if err != nil {
		http.Error(w, "bad trace ID: "+err.Error(), http.StatusBadRequest)
		return
	}
	rec, ok := telemetry.FlightRecorder().Trace(id)
	if !ok {
		http.Error(w, fmt.Sprintf("trace %d not retained", id), http.StatusNotFound)
		return
	}
	g.writeJSON(w, http.StatusOK, rec)
}

// getEvents lists the flight recorder's protocol events, newest first.
func (g *httpGateway) getEvents(w http.ResponseWriter, _ *http.Request) {
	g.writeJSON(w, http.StatusOK, map[string]any{
		"events": telemetry.FlightRecorder().Events(),
	})
}

// healthReport answers a health or readiness check from the prober's
// cached state; ok picks which verdict gates the status code.
func (g *httpGateway) healthReport(w http.ResponseWriter, ok func(healthState) bool) {
	g.srv.mu.Lock()
	h := g.srv.health
	g.srv.mu.Unlock()
	if h == nil {
		http.Error(w, "health checker not running", http.StatusServiceUnavailable)
		return
	}
	st := h.state()
	status := http.StatusOK
	if !ok(st) {
		status = http.StatusServiceUnavailable
	}
	g.writeJSON(w, status, st)
}

func (g *httpGateway) getHealthz(w http.ResponseWriter, _ *http.Request) {
	g.healthReport(w, func(st healthState) bool { return st.Healthy })
}

func (g *httpGateway) getReadyz(w http.ResponseWriter, _ *http.Request) {
	g.healthReport(w, func(st healthState) bool { return st.Ready })
}

// getMetrics serves the process-wide telemetry registry in Prometheus
// text exposition format: the paper's phase timers (Figure 2), registry
// insert/query histograms, discovery forward counters and the live Bloom
// false-positive-rate gauge, all from one scrape.
func (g *httpGateway) getMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.Default().WritePrometheus(w); err != nil {
		g.log.Error("write metrics", "err", err)
	}
}

// timeseriesPoint is one observation window of a histogram series on
// the wire: the slo.CurvePoint field layout so load-run curves and live
// daemon curves read identically.
type timeseriesPoint struct {
	ElapsedMs int64   `json:"elapsed_ms"`
	WindowMs  int64   `json:"window_ms"`
	Count     uint64  `json:"count"`
	RatePerS  float64 `json:"rate_per_sec"`
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	P999Nanos int64   `json:"p999_ns"`
}

// getTimeseries serves windowed quantile curves from the daemon's
// telemetry history: one series per histogram metric (or just ?metric=),
// each point the latency distribution between two consecutive samples,
// optionally restricted to the last ?since={duration}. A journal-backed
// daemon (-telemetry-journal) serves history that survives restarts —
// DeltaSnapshot clamps across the counter reset at the restart boundary
// — while a plain daemon serves the in-memory sampling ring, which a
// restart loses.
func (g *httpGateway) getTimeseries(w http.ResponseWriter, r *http.Request) {
	var since time.Duration
	if raw := r.URL.Query().Get("since"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, "bad since (want a positive duration like 10m)", http.StatusBadRequest)
			return
		}
		since = d
	}
	var samples []telemetry.Sample
	source := "ring"
	switch {
	case g.srv.journal != nil:
		source = "journal"
		hist := g.srv.journal.History()
		if since > 0 {
			hist = g.srv.journal.Recent(since)
		}
		if len(hist) > 0 {
			// Journal samples carry absolute times; re-base them so the
			// curve's elapsed axis starts at the oldest retained sample.
			t0 := hist[0].Time
			for _, s := range hist {
				samples = append(samples, telemetry.Sample{Elapsed: s.Time.Sub(t0), Metrics: s.Metrics})
			}
		}
	case g.srv.sampler != nil:
		samples = g.srv.sampler.Ring().Samples()
		if since > 0 && len(samples) > 0 {
			cut := samples[len(samples)-1].Elapsed - since
			i := 0
			for i < len(samples) && samples[i].Elapsed <= cut {
				i++
			}
			samples = samples[i:]
		}
	default:
		http.Error(w, "time-series sampling disabled (-sample-every 0)", http.StatusNotFound)
		return
	}
	only := r.URL.Query().Get("metric")
	series := make(map[string][]timeseriesPoint)
	if len(samples) > 0 {
		for _, m := range samples[len(samples)-1].Metrics {
			// Only *_seconds histograms: the point fields are nanoseconds,
			// and size histograms would be mislabeled.
			if m.Kind != telemetry.KindHistogram || !strings.HasSuffix(m.Name, "_seconds") {
				continue
			}
			if only != "" && m.Name != only {
				continue
			}
			var pts []timeseriesPoint
			for _, p := range telemetry.QuantileCurve(samples, m.Name, 0) {
				pts = append(pts, timeseriesPoint{
					ElapsedMs: p.Elapsed.Milliseconds(),
					WindowMs:  p.Window.Milliseconds(),
					Count:     p.Count,
					RatePerS:  p.Rate,
					P50Nanos:  int64(p.P50 * 1e9),
					P95Nanos:  int64(p.P95 * 1e9),
					P99Nanos:  int64(p.P99 * 1e9),
					P999Nanos: int64(p.P999 * 1e9),
				})
			}
			if pts != nil {
				series[m.Name] = pts
			}
		}
	}
	g.writeJSON(w, http.StatusOK, map[string]any{
		"samples": len(samples),
		"source":  source,
		"series":  series,
	})
}

// getAlerts serves the drift watchdog's view: alerts firing right now,
// the flight recorder's fired-alert history newest first, and whether a
// watchdog is running at all (a daemon without -watch-every answers
// "watching":false rather than 404, so pollers need no special case).
func (g *httpGateway) getAlerts(w http.ResponseWriter, _ *http.Request) {
	active := []telemetry.Alert{}
	watching := g.srv.watchdog != nil
	if watching {
		active = g.srv.watchdog.Active()
	}
	fired := telemetry.FlightRecorder().Alerts()
	if fired == nil {
		fired = []telemetry.Alert{}
	}
	g.writeJSON(w, http.StatusOK, map[string]any{
		"watching": watching,
		"active":   active,
		"fired":    fired,
	})
}

// getDebugVars serves the same snapshot as an expvar-style JSON object.
func (g *httpGateway) getDebugVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.Default().WriteJSON(w); err != nil {
		g.log.Error("write debug vars", "err", err)
	}
}

// serveHTTP runs the gateway; it blocks like serve. The server's
// httpLive flag tracks the listener's lifetime for the health prober.
func serveHTTP(addr string, srv *server, withPprof bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("http gateway: %w", err)
	}
	srv.httpLive.Store(true)
	defer srv.httpLive.Store(false)
	s := &http.Server{Handler: newHTTPGateway(srv, withPprof)}
	slog.Info("serving HTTP gateway", "component", "http", "addr", ln.Addr().String(), "pprof", withPprof)
	if err := s.Serve(ln); err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("http gateway: %w", err)
	}
	return nil
}
