package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
)

// httpGateway exposes the directory over HTTP for clients that prefer REST
// to the UDP datagram protocol:
//
//	POST /services          body: Amigo-S XML        -> 201
//	DELETE /services/{name}                          -> 204
//	POST /query             body: Amigo-S XML        -> 200 {"hits":[...]}
//	POST /ontologies        body: ontology XML       -> 201
//	GET  /tables?uri={ontology-uri}                  -> 200 code table JSON
//	GET  /stats                                      -> 200 {"capabilities":..,"ontologies":[..]}
//
// The handler funnels every mutation through the same server.handle path
// as the UDP front end, so journaling and validation behave identically.
type httpGateway struct {
	srv *server
}

// newHTTPGateway builds the REST mux over a directory server.
func newHTTPGateway(srv *server) http.Handler {
	g := &httpGateway{srv: srv}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /services", g.postServices)
	mux.HandleFunc("DELETE /services/{name}", g.deleteService)
	mux.HandleFunc("POST /query", g.postQuery)
	mux.HandleFunc("POST /ontologies", g.postOntologies)
	mux.HandleFunc("GET /tables", g.getTable)
	mux.HandleFunc("GET /stats", g.getStats)
	return mux
}

// dispatch runs a request through the shared handler and writes the reply.
func (g *httpGateway) dispatch(w http.ResponseWriter, req request, okStatus int) {
	data, err := json.Marshal(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := g.srv.handle(data)
	if !resp.OK {
		status := http.StatusBadRequest
		if strings.Contains(resp.Error, "not registered") || strings.Contains(resp.Error, "no table") {
			status = http.StatusNotFound
		}
		http.Error(w, resp.Error, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(okStatus)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("sdpd: http encode: %v", err)
	}
}

func readBody(w http.ResponseWriter, r *http.Request) (string, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return "", false
	}
	if len(body) == 0 {
		http.Error(w, "empty body", http.StatusBadRequest)
		return "", false
	}
	return string(body), true
}

func (g *httpGateway) postServices(w http.ResponseWriter, r *http.Request) {
	doc, ok := readBody(w, r)
	if !ok {
		return
	}
	g.dispatch(w, request{Op: "register", Doc: doc}, http.StatusCreated)
}

func (g *httpGateway) deleteService(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		http.Error(w, "missing service name", http.StatusBadRequest)
		return
	}
	g.dispatch(w, request{Op: "deregister", Name: name}, http.StatusOK)
}

func (g *httpGateway) postQuery(w http.ResponseWriter, r *http.Request) {
	doc, ok := readBody(w, r)
	if !ok {
		return
	}
	g.dispatch(w, request{Op: "query", Doc: doc}, http.StatusOK)
}

func (g *httpGateway) postOntologies(w http.ResponseWriter, r *http.Request) {
	doc, ok := readBody(w, r)
	if !ok {
		return
	}
	g.dispatch(w, request{Op: "add-ontology", Doc: doc}, http.StatusCreated)
}

// getTable takes the ontology URI as a query parameter (URIs contain
// slashes that path routing would normalize away): GET /tables?uri=...
func (g *httpGateway) getTable(w http.ResponseWriter, r *http.Request) {
	uri := r.URL.Query().Get("uri")
	if uri == "" {
		http.Error(w, "missing uri query parameter", http.StatusBadRequest)
		return
	}
	g.dispatch(w, request{Op: "get-table", Name: uri}, http.StatusOK)
}

func (g *httpGateway) getStats(w http.ResponseWriter, _ *http.Request) {
	g.dispatch(w, request{Op: "stats"}, http.StatusOK)
}

// serveHTTP runs the gateway; it blocks like serve.
func serveHTTP(addr string, srv *server) error {
	s := &http.Server{Addr: addr, Handler: newHTTPGateway(srv)}
	log.Printf("sdpd: serving HTTP gateway on %s", addr)
	if err := s.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("http gateway: %w", err)
	}
	return nil
}
