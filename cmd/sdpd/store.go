package main

import (
	"fmt"
	"sort"
	"strings"

	"sariadne/internal/store"
	"sariadne/internal/store/boltlike"
	"sariadne/internal/store/filestore"
	"sariadne/internal/store/memstore"
	"sariadne/internal/tenant"
)

// advertOwner resolves the tenant charged for an advertisement: the
// explicit record stamp when present (hint), else the name's namespace
// prefix. Legacy un-namespaced names belong to no tenant ("").
func advertOwner(name, hint string) string {
	if hint != "" {
		return hint
	}
	owner, _, _ := tenant.SplitName(name)
	return owner
}

// openStore opens the storage backend selected by -store over the -state
// path. "auto" sniffs the on-disk format so an upgraded daemon keeps
// reading the store it finds — a v1 journal, a headered v2 JSON-lines
// file, or a boltlike binary store.
func openStore(kind, path string, opts store.Options) (store.Store, error) {
	k := store.Kind(kind)
	if kind == "auto" {
		detected, err := store.Detect(path)
		if err != nil {
			return nil, err
		}
		k = detected
	}
	switch k {
	case store.KindMem:
		return memstore.New(), nil
	case store.KindJSONL:
		return filestore.Open(path, opts)
	case store.KindBolt:
		return boltlike.Open(path, opts)
	default:
		return nil, fmt.Errorf("unknown -store kind %q (want auto, mem, jsonl or bolt)", kind)
	}
}

// destinationKind resolves the backend a migration writes. An explicit
// -store wins; "auto" falls back to the destination path's extension so
// `sdpd -migrate-store new.bolt` does the obvious thing.
func destinationKind(kind, dst string) (string, error) {
	switch kind {
	case "jsonl", "bolt":
		return kind, nil
	case "auto":
		if strings.HasSuffix(dst, ".bolt") {
			return "bolt", nil
		}
		return "jsonl", nil
	case "mem":
		return "", fmt.Errorf("-migrate-store cannot target the mem backend")
	default:
		return "", fmt.Errorf("unknown -store kind %q (want auto, jsonl or bolt)", kind)
	}
}

// migrateStore moves the history at src into a fresh store at dst,
// folding it to canonical form: the journal→v2 upgrade path and the
// cross-backend mover behind `sdpd -state src -migrate-store dst`.
func migrateStore(src, dst, dstKindFlag string) (store.MigrateStats, error) {
	var stats store.MigrateStats
	if src == "" {
		return stats, fmt.Errorf("-migrate-store needs a source: set -state")
	}
	if dst == "" || dst == src {
		return stats, fmt.Errorf("-migrate-store needs a destination path different from -state")
	}
	kind, err := destinationKind(dstKindFlag, dst)
	if err != nil {
		return stats, err
	}
	from, err := openStore("auto", src, store.Options{})
	if err != nil {
		return stats, fmt.Errorf("opening source: %w", err)
	}
	defer func() { _ = from.Close() }() // read-only source
	to, err := openStore(kind, dst, store.Options{})
	if err != nil {
		return stats, fmt.Errorf("opening destination: %w", err)
	}
	stats, err = store.Migrate(from, to)
	if err != nil {
		_ = to.Close() // the migration failure is the diagnosis
		return stats, err
	}
	if err := to.Close(); err != nil {
		return stats, fmt.Errorf("closing destination: %w", err)
	}
	return stats, nil
}

// replayStore feeds every persisted mutation back into the server. The
// old journal replay contract carries over: junk entries and records the
// directory rejects are skipped with a count, a torn tail stops nothing,
// and a missing file is an empty history.
func replayStore(st store.Store, s *server) (applied, skipped int, torn bool, err error) {
	// Replay happens before the front ends start, but applyLocked's
	// contract is that the caller holds the server mutex, so hold it.
	s.mu.Lock()
	defer s.mu.Unlock()
	stats, err := st.Replay(func(rec store.Record) error {
		if resp := s.applyLocked(rec); !resp.OK {
			skipped++
			return nil
		}
		applied++
		return nil
	})
	skipped += stats.Skipped
	if err != nil {
		return applied, skipped, stats.TornTail, err
	}
	return applied, skipped, stats.TornTail, nil
}

// applyLocked executes a persisted record against the directory without
// re-persisting it, rebuilding the advertisement version ledger and the
// per-tenant live-service counts as it goes — replay is what makes
// tenant quotas durable across daemon restarts.
func (s *server) applyLocked(rec store.Record) response {
	switch rec.Op {
	case store.OpRegister:
		name, err := s.backend.Register([]byte(rec.Doc))
		if err != nil {
			return response{Error: err.Error()}
		}
		prior := s.adverts[name]
		fresh := prior == nil || !prior.Live
		s.recordAdvertLocked(name, rec.Doc, rec.Version)
		if fresh {
			s.gate.ServiceLive(advertOwner(name, rec.Tenant), +1)
		}
		return response{OK: true}
	case store.OpDeregister:
		if !s.backend.Deregister(rec.Name) {
			return response{Error: "not registered"}
		}
		s.dropAdvertLocked(rec.Name)
		s.gate.ServiceLive(advertOwner(rec.Name, rec.Tenant), -1)
		return response{OK: true}
	case store.OpAddOntology:
		if err := s.addOntologyTextLocked(rec.Doc); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	default:
		return response{Error: "unknown store op " + string(rec.Op)}
	}
}

// advertVersion is one published version of an advertisement.
type advertVersion struct {
	Version uint64 `json:"version"`
	Doc     string `json:"doc,omitempty"`
}

// advertHistory is the version ledger of one advertised name: every
// version ever published (oldest first) and whether the newest is live.
// Superseding a name bumps the version; deregistering keeps the history
// listable but marks it withdrawn.
type advertHistory struct {
	Name     string          `json:"name"`
	Live     bool            `json:"live"`
	Versions []advertVersion `json:"versions"`
}

// current returns the newest published version number (0 if none).
func (h *advertHistory) current() uint64 {
	if len(h.Versions) == 0 {
		return 0
	}
	return h.Versions[len(h.Versions)-1].Version
}

// recordAdvertLocked appends one published version to the ledger.
// version 0 (a v1 record, or a fresh registration before assignment)
// self-assigns the next number for the name, so replaying a v1 journal
// reconstructs the same version sequence the server would have assigned.
func (s *server) recordAdvertLocked(name, doc string, version uint64) uint64 {
	h := s.adverts[name]
	if h == nil {
		h = &advertHistory{Name: name}
		s.adverts[name] = h
	}
	if version == 0 {
		version = h.current() + 1
	}
	h.Versions = append(h.Versions, advertVersion{Version: version, Doc: doc})
	h.Live = true
	return version
}

// dropAdvertLocked marks a name withdrawn, keeping its versions listable.
func (s *server) dropAdvertLocked(name string) {
	if h := s.adverts[name]; h != nil {
		h.Live = false
	}
}

// serviceEntry is one row of a GET /services page.
type serviceEntry struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
}

// servicesPage is the paginated live-advertisement listing.
type servicesPage struct {
	Services []serviceEntry `json:"services"`
	// NextCursor is the value to pass as ?cursor= for the following page;
	// empty when this page is the last.
	NextCursor string `json:"next_cursor,omitempty"`
	// Total is the full live-advertisement count, independent of paging.
	Total int `json:"total"`
}

// listServicesLocked pages through the live advertisements in name order.
// cursor is the last name of the previous page ("" starts from the top).
func (s *server) listServicesLocked(limit int, cursor string) servicesPage {
	names := make([]string, 0, len(s.adverts))
	for name, h := range s.adverts {
		if h.Live {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	page := servicesPage{Services: []serviceEntry{}, Total: len(names)}
	start := 0
	if cursor != "" {
		// Resume strictly after the cursor name.
		start = sort.SearchStrings(names, cursor)
		if start < len(names) && names[start] == cursor {
			start++
		}
	}
	end := start + limit
	if end > len(names) {
		end = len(names)
	}
	for _, name := range names[start:end] {
		page.Services = append(page.Services, serviceEntry{Name: name, Version: s.adverts[name].current()})
	}
	// A full page always returns a cursor — even when it happens to be the
	// final page. The client's next probe comes back empty and cursorless,
	// which is the unambiguous end-of-listing signal; keying the cursor off
	// end < len(names) made an exactly-full final page indistinguishable
	// from a truncated listing.
	if end-start == limit && end > start {
		page.NextCursor = names[end-1]
	}
	return page
}

// serviceHistoryLocked returns the version ledger of one name, or nil.
// The returned copy is safe to serialize outside the lock.
func (s *server) serviceHistoryLocked(name string) *advertHistory {
	h := s.adverts[name]
	if h == nil {
		return nil
	}
	cp := &advertHistory{Name: h.Name, Live: h.Live, Versions: append([]advertVersion(nil), h.Versions...)}
	return cp
}
