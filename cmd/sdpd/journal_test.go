package main

import (
	"os"
	"path/filepath"
	"testing"

	"sariadne/internal/ontology"
	"sariadne/internal/profile"
)

func TestJournalPersistAndReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.jsonl")

	// First server lifetime: journal ontologies and a registration.
	s1, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	s1.journal = j
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		data, err := ontology.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		if resp := s1.handle(mustJSON(t, request{Op: "add-ontology", Doc: string(data)})); !resp.OK {
			t.Fatalf("add-ontology: %s", resp.Error)
		}
	}
	if resp := s1.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())})); !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	// Register and withdraw a second service: replay must converge to the
	// post-deregistration state.
	other := profile.WorkstationService()
	other.Name = "Transient"
	if resp := s1.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, other)})); !resp.OK {
		t.Fatalf("register transient: %s", resp.Error)
	}
	if resp := s1.handle(mustJSON(t, request{Op: "deregister", Name: "Transient"})); !resp.OK {
		t.Fatalf("deregister: %s", resp.Error)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	// Second lifetime: recover from the journal alone.
	s2, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, err := replayJournal(path, s2)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d entries", skipped)
	}
	if applied != 5 { // 2 ontologies + 2 registers + 1 deregister
		t.Fatalf("applied = %d, want 5", applied)
	}
	resp := s2.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService())}))
	if !resp.OK || len(resp.Hits) != 1 || resp.Hits[0].Service != "MediaWorkstation" {
		t.Fatalf("query after recovery: %+v", resp)
	}
	if s2.backend.Len() != 2 { // workstation's two capabilities only
		t.Fatalf("capabilities after recovery = %d, want 2", s2.backend.Len())
	}
}

func TestJournalReplayTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.jsonl")
	content := `{"op":"add-ontology","doc":"<ontology uri=\"u\"><class name=\"A\"/></ontology>"}
not json at all
{"op":"register","doc":"garbage that will not parse"}
{"op":"unknown-op"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, err := replayJournal(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || skipped != 3 {
		t.Fatalf("applied=%d skipped=%d, want 1/3", applied, skipped)
	}
}

func TestJournalReplayMissingFile(t *testing.T) {
	s, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, err := replayJournal(filepath.Join(t.TempDir(), "absent.jsonl"), s)
	if err != nil || applied != 0 || skipped != 0 {
		t.Fatalf("missing file: %d/%d/%v", applied, skipped, err)
	}
}
