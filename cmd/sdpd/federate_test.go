package main

import (
	"log/slog"
	"testing"
	"time"

	"sariadne/internal/profile"
	"sariadne/internal/testutil"
)

// newFederatedServer boots a daemon server with a backbone membership on
// a fresh loopback port, exactly as `sdpd -federate :0 -peer ...` would.
func newFederatedServer(t *testing.T, kind string, peers ...string) (*server, *federation) {
	t.Helper()
	s := newTestServer(t)
	fed, err := startFederation(s, federationOptions{
		Listen:    "127.0.0.1:0",
		Transport: kind,
		Peers:     peers,
	}, slog.Default())
	if err != nil {
		t.Fatalf("startFederation: %v", err)
	}
	t.Cleanup(fed.close)
	return s, fed
}

// TestFederatedDaemons drives two daemon servers federated over loopback
// (once per substrate): a service registered through one daemon's client
// front end is discovered through the other's, and the peers op reports
// the live backbone view on both sides.
func TestFederatedDaemons(t *testing.T) {
	for _, kind := range []string{"udp", "tcp"} {
		t.Run(kind, func(t *testing.T) {
			sa, fa := newFederatedServer(t, kind)
			sb, _ := newFederatedServer(t, kind, string(fa.node.ID()))

			testutil.WaitFor(t, 5*time.Second, func() bool {
				return len(fa.node.Peers()) == 1
			}, "backbone handshake")

			if resp := sa.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())})); !resp.OK {
				t.Fatalf("register on A: %s", resp.Error)
			}
			// B's view of A reflects the registration once the refreshed
			// summary lands.
			testutil.WaitFor(t, 5*time.Second, func() bool {
				resp := sb.handle(mustJSON(t, request{Op: "peers"}))
				if !resp.OK || len(resp.Peers) != 1 {
					return false
				}
				p := resp.Peers[0]
				return p.Addr == fa.node.ID() && p.HasSummary && p.Entries == 2 && !p.LastAnnounce.IsZero()
			}, "A's summary never reached B")

			resp := sb.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService())}))
			if !resp.OK || len(resp.Hits) != 1 {
				t.Fatalf("federated query: %+v", resp)
			}
			if h := resp.Hits[0]; h.Service != "MediaWorkstation" || h.Directory != string(fa.node.ID()) {
				t.Fatalf("hit = %+v, want MediaWorkstation via %s", h, fa.node.ID())
			}
			if resp.Partial {
				t.Fatalf("two live daemons produced a partial result: %+v", resp)
			}

			// The transport join shows socket-level traffic for the peer.
			resp = sa.handle(mustJSON(t, request{Op: "peers"}))
			if !resp.OK || len(resp.Peers) != 1 || resp.Peers[0].Transport == nil {
				t.Fatalf("peers on A: %+v", resp)
			}
			if tp := resp.Peers[0].Transport; tp.FramesSent == 0 || tp.FramesReceived == 0 {
				t.Fatalf("transport stats empty: %+v", tp)
			}
		})
	}
}

// TestPeersOpRequiresFederation pins the standalone behavior: the op
// fails loudly instead of returning a misleading empty backbone.
func TestPeersOpRequiresFederation(t *testing.T) {
	s := newTestServer(t)
	resp := s.handle(mustJSON(t, request{Op: "peers"}))
	if resp.OK || resp.Code != codeBadRequest {
		t.Fatalf("peers on standalone daemon: %+v", resp)
	}
}
