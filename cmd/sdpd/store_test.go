package main

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/store"
	"sariadne/internal/testutil"
)

// openTestStore opens the given backend over path, failing the test on
// error and closing on cleanup.
func openTestStore(t *testing.T, kind, path string) store.Store {
	t.Helper()
	st, err := openStore(kind, path, store.Options{})
	if err != nil {
		t.Fatalf("openStore(%s): %v", kind, err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// TestStorePersistAndReplay is the durability round trip, run against
// every backend sdpd can select: mutations from one server lifetime
// recover into a second one.
func TestStorePersistAndReplay(t *testing.T) {
	for _, kind := range []string{"jsonl", "bolt", "mem"} {
		t.Run(kind, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "state")
			st := openTestStore(t, kind, path)

			// First server lifetime: persist ontologies and registrations.
			s1, err := newServer(nil)
			if err != nil {
				t.Fatal(err)
			}
			s1.store = st
			for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
				data, err := ontology.Marshal(o)
				if err != nil {
					t.Fatal(err)
				}
				if resp := s1.handle(mustJSON(t, request{Op: "add-ontology", Doc: string(data)})); !resp.OK {
					t.Fatalf("add-ontology: %s", resp.Error)
				}
			}
			if resp := s1.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())})); !resp.OK {
				t.Fatalf("register: %s", resp.Error)
			}
			// Register and withdraw a second service: replay must converge to
			// the post-deregistration state.
			other := profile.WorkstationService()
			other.Name = "Transient"
			if resp := s1.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, other)})); !resp.OK {
				t.Fatalf("register transient: %s", resp.Error)
			}
			if resp := s1.handle(mustJSON(t, request{Op: "deregister", Name: "Transient"})); !resp.OK {
				t.Fatalf("deregister: %s", resp.Error)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Second lifetime: recover from the store alone. The mem backend
			// cannot reopen a closed medium through openStore, so it replays
			// through a fresh handle onto the same history via Snapshot
			// semantics — skip reopen there.
			if kind == "mem" {
				return
			}
			st2 := openTestStore(t, "auto", path) // auto-detect must find the right backend
			s2, err := newServer(nil)
			if err != nil {
				t.Fatal(err)
			}
			applied, skipped, torn, err := replayStore(st2, s2)
			if err != nil {
				t.Fatal(err)
			}
			if skipped != 0 || torn {
				t.Fatalf("skipped=%d torn=%v", skipped, torn)
			}
			if applied != 5 { // 2 ontologies + 2 registers + 1 deregister
				t.Fatalf("applied = %d, want 5", applied)
			}
			resp := s2.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService())}))
			if !resp.OK || len(resp.Hits) != 1 || resp.Hits[0].Service != "MediaWorkstation" {
				t.Fatalf("query after recovery: %+v", resp)
			}
			if s2.backend.Len() != 2 { // workstation's two capabilities only
				t.Fatalf("capabilities after recovery = %d, want 2", s2.backend.Len())
			}
			// The version ledger recovered too: live workstation, withdrawn
			// transient with its history intact.
			s2.mu.Lock()
			ws := s2.serviceHistoryLocked("MediaWorkstation")
			tr := s2.serviceHistoryLocked("Transient")
			s2.mu.Unlock()
			if ws == nil || !ws.Live || ws.current() != 1 {
				t.Fatalf("workstation ledger after recovery: %+v", ws)
			}
			if tr == nil || tr.Live || len(tr.Versions) != 1 {
				t.Fatalf("transient ledger after recovery: %+v", tr)
			}
		})
	}
}

// TestStoreReplayTolerance carries the v1 journal contract forward:
// junk lines and records the directory rejects are skipped with a
// count, not fatal.
func TestStoreReplayTolerance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.jsonl")
	content := `{"op":"add-ontology","doc":"<ontology uri=\"u\"><class name=\"A\"/></ontology>"}
not json at all
{"op":"register","doc":"garbage that will not parse"}
{"op":"unknown-op"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, "auto", path)
	s, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, _, err := replayStore(st, s)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || skipped != 3 {
		t.Fatalf("applied=%d skipped=%d, want 1/3", applied, skipped)
	}
}

// TestStoreReplayMissingFile: a missing state file is an empty history,
// not an error — first boot works.
func TestStoreReplayMissingFile(t *testing.T) {
	st := openTestStore(t, "auto", filepath.Join(t.TempDir(), "absent.jsonl"))
	s, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, torn, err := replayStore(st, s)
	if err != nil || applied != 0 || skipped != 0 || torn {
		t.Fatalf("missing file: %d/%d/%v/%v", applied, skipped, torn, err)
	}
}

// TestAdvertisementVersioning pins the supersede contract: re-publishing
// a name bumps the server-assigned version, old versions stay listable,
// and deregistration withdraws without erasing history.
func TestAdvertisementVersioning(t *testing.T) {
	s := newTestServer(t)
	doc := mustDoc(t, profile.WorkstationService())
	resp := s.handle(mustJSON(t, request{Op: "register", Doc: doc}))
	if !resp.OK || resp.Version != 1 {
		t.Fatalf("first register: %+v", resp)
	}
	resp = s.handle(mustJSON(t, request{Op: "register", Doc: doc}))
	if !resp.OK || resp.Version != 2 {
		t.Fatalf("superseding register: %+v", resp)
	}
	s.mu.Lock()
	h := s.serviceHistoryLocked("MediaWorkstation")
	s.mu.Unlock()
	if h == nil || !h.Live || len(h.Versions) != 2 || h.Versions[0].Version != 1 || h.Versions[1].Version != 2 {
		t.Fatalf("ledger after supersede: %+v", h)
	}
	if resp := s.handle(mustJSON(t, request{Op: "deregister", Name: "MediaWorkstation"})); !resp.OK {
		t.Fatalf("deregister: %s", resp.Error)
	}
	s.mu.Lock()
	h = s.serviceHistoryLocked("MediaWorkstation")
	s.mu.Unlock()
	if h == nil || h.Live || len(h.Versions) != 2 {
		t.Fatalf("ledger after withdraw: %+v", h)
	}
	// Re-publishing after withdrawal continues the version sequence.
	resp = s.handle(mustJSON(t, request{Op: "register", Doc: doc}))
	if !resp.OK || resp.Version != 3 {
		t.Fatalf("re-register after withdraw: %+v", resp)
	}
}

// TestListServicesPagination drives the cursor protocol over a registry
// bigger than one page.
func TestListServicesPagination(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 7; i++ {
		svc := profile.WorkstationService()
		svc.Name = fmt.Sprintf("svc-%02d", i)
		if resp := s.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, svc)})); !resp.OK {
			t.Fatalf("register %d: %s", i, resp.Error)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var got []string
	cursor := ""
	pages := 0
	for {
		page := s.listServicesLocked(3, cursor)
		if page.Total != 7 {
			t.Fatalf("total = %d, want 7", page.Total)
		}
		for _, e := range page.Services {
			got = append(got, e.Name)
			if e.Version != 1 {
				t.Fatalf("entry %s version = %d", e.Name, e.Version)
			}
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages != 3 || len(got) != 7 {
		t.Fatalf("pages=%d entries=%d, want 3 pages of 7 total", pages, len(got))
	}
	for i, name := range got {
		if want := fmt.Sprintf("svc-%02d", i); name != want {
			t.Fatalf("entry %d = %s, want %s (sorted, no duplicates)", i, name, want)
		}
	}
}

// TestMigrateStoreCommand is the operator path end to end: a v1 journal
// written by the old daemon migrates to a bolt store, and a daemon
// booting from the new store serves the same answers.
func TestMigrateStoreCommand(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "v1.jsonl")

	// Write a legacy journal through a live server (old persist path
	// equivalent: same ops, same docs).
	st := openTestStore(t, "jsonl", src)
	s1, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.store = st
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		data, err := ontology.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		if resp := s1.handle(mustJSON(t, request{Op: "add-ontology", Doc: string(data)})); !resp.OK {
			t.Fatalf("add-ontology: %s", resp.Error)
		}
	}
	if resp := s1.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())})); !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(dir, "v2.bolt")
	stats, err := migrateStore(src, dst, "auto") // .bolt extension selects the backend
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if stats.Replayed != 3 || stats.Live != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if kind, err := store.Detect(dst); err != nil || kind != store.KindBolt {
		t.Fatalf("destination kind = %v, %v", kind, err)
	}

	st2 := openTestStore(t, "auto", dst)
	s2, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, _, err := replayStore(st2, s2)
	if err != nil || applied != 3 || skipped != 0 {
		t.Fatalf("replay from migrated store: %d/%d/%v", applied, skipped, err)
	}
	resp := s2.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService())}))
	if !resp.OK || len(resp.Hits) != 1 || resp.Hits[0].Service != "MediaWorkstation" {
		t.Fatalf("query after migration: %+v", resp)
	}

	// Guard rails: migrating onto a non-empty destination refuses.
	if _, err := migrateStore(src, dst, "auto"); err == nil {
		t.Fatal("migration onto a non-empty destination succeeded")
	}
	// And the mem backend is not a migration target.
	if _, err := migrateStore(src, filepath.Join(dir, "x"), "mem"); err == nil {
		t.Fatal("migration to mem succeeded")
	}
}

// TestOpenStoreAutoDetect pins the format sniffing behind -store auto.
func TestOpenStoreAutoDetect(t *testing.T) {
	dir := t.TempDir()

	boltPath := filepath.Join(dir, "s.bolt")
	st := openTestStore(t, "bolt", boltPath)
	if err := st.Append(store.Record{Op: store.OpDeregister, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTestStore(t, "auto", boltPath)
	stats, err := re.Replay(func(store.Record) error { return nil })
	if err != nil || stats.Records != 1 {
		t.Fatalf("auto-detected bolt replay: %+v, %v", stats, err)
	}

	if _, err := openStore("nope", filepath.Join(dir, "x"), store.Options{}); err == nil {
		t.Fatal("unknown store kind accepted")
	}
}

// TestListServicesExactlyFullFinalPage is the cursor off-by-one
// regression: when the listing length is a multiple of the page size, the
// final full page must still return a cursor, and the follow-up probe
// must come back empty and cursorless. Before the fix the last full page
// dropped the cursor, so a client could not distinguish "complete" from
// "truncated at a page boundary".
func TestListServicesExactlyFullFinalPage(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 6; i++ {
		svc := profile.WorkstationService()
		svc.Name = fmt.Sprintf("svc-%02d", i)
		if resp := s.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, svc)})); !resp.OK {
			t.Fatalf("register %d: %s", i, resp.Error)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	page1 := s.listServicesLocked(3, "")
	if len(page1.Services) != 3 || page1.NextCursor != "svc-02" {
		t.Fatalf("page 1 = %+v", page1)
	}
	page2 := s.listServicesLocked(3, page1.NextCursor)
	if len(page2.Services) != 3 {
		t.Fatalf("page 2 = %+v", page2)
	}
	if page2.NextCursor != "svc-05" {
		t.Fatalf("exactly-full final page dropped its cursor: %+v", page2)
	}
	// The probe past the end terminates the listing unambiguously.
	page3 := s.listServicesLocked(3, page2.NextCursor)
	if len(page3.Services) != 0 || page3.NextCursor != "" {
		t.Fatalf("end-of-listing probe = %+v", page3)
	}
	// A short (not full) final page still ends without a cursor.
	short := s.listServicesLocked(4, "svc-03")
	if len(short.Services) != 2 || short.NextCursor != "" {
		t.Fatalf("short final page = %+v", short)
	}
	// And a page larger than the listing never returns a cursor.
	all := s.listServicesLocked(50, "")
	if len(all.Services) != 6 || all.NextCursor != "" {
		t.Fatalf("single-page listing = %+v", all)
	}
}

// TestBackgroundCompactor exercises -compact-every's loop: a register +
// deregister history folds to nothing, so after one tick the raw log is
// empty — without any request-path involvement.
func TestBackgroundCompactor(t *testing.T) {
	st := openTestStore(t, "mem", "")
	s, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	s.store = st
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		data, err := ontology.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		if resp := s.handle(mustJSON(t, request{Op: "add-ontology", Doc: string(data)})); !resp.OK {
			t.Fatalf("add-ontology: %s", resp.Error)
		}
	}
	if resp := s.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())})); !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	if resp := s.handle(mustJSON(t, request{Op: "deregister", Name: "MediaWorkstation"})); !resp.OK {
		t.Fatalf("deregister: %s", resp.Error)
	}
	records := func() int {
		n := 0
		stats, err := st.Replay(func(store.Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("replay: %v (stats %+v)", err, stats)
		}
		return n
	}
	// Raw history: 2 ontologies + register + deregister.
	if n := records(); n != 4 {
		t.Fatalf("pre-compaction records = %d, want 4", n)
	}

	cp := startCompactor(st, 5*time.Millisecond, slog.Default())
	defer cp.close()
	// The two ontologies survive folding.
	testutil.WaitFor(t, 5*time.Second, func() bool { return records() == 2 },
		"compactor never folded the log")
	// close joins the loop goroutine; a second close is a no-op.
	cp.close()
	cp.close()
}
