package main

import (
	"sync"
	"time"

	"sariadne/internal/store"
)

// probe is one named component check inside a health report.
type probe struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
}

// healthState is the cached outcome of the latest probe round, served
// verbatim by GET /healthz and /readyz.
type healthState struct {
	// Healthy means the daemon's own components work: store answering,
	// configured HTTP gateway serving, backbone transport not closed.
	Healthy bool `json:"healthy"`
	// Ready additionally requires the federation to be usable: at least
	// one backbone peer heard from recently (standalone daemons are ready
	// whenever they are healthy).
	Ready   bool      `json:"ready"`
	Checked time.Time `json:"checked,omitzero"`
	Probes  []probe   `json:"probes"`
}

// healthChecker periodically probes the daemon's components and caches
// the result, so the /healthz and /readyz surfaces answer instantly and
// a wedged component cannot hang the health endpoint itself.
type healthChecker struct {
	srv         *server
	interval    time.Duration
	peerRecency time.Duration

	mu   sync.Mutex
	last healthState

	stop chan struct{}
	done chan struct{}
}

// startHealthChecker probes once synchronously (so the surfaces never
// serve a zero state) and then keeps probing every interval until closed.
// peerRecency bounds how long ago the freshest backbone peer may have
// been heard for the daemon to count as ready; zero defaults to ten probe
// intervals.
func startHealthChecker(srv *server, interval, peerRecency time.Duration) *healthChecker {
	if interval <= 0 {
		interval = time.Second
	}
	if peerRecency <= 0 {
		peerRecency = 10 * interval
	}
	h := &healthChecker{
		srv:         srv,
		interval:    interval,
		peerRecency: peerRecency,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	h.probeNow()
	go h.loop()
	srv.mu.Lock()
	srv.health = h
	srv.mu.Unlock()
	return h
}

func (h *healthChecker) loop() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.probeNow()
		}
	}
}

// probeNow runs every component check and caches the verdicts.
func (h *healthChecker) probeNow() {
	storeP := probe{Name: "store", OK: true}
	h.srv.mu.Lock()
	// Touching the backend under mu doubles as a check that request
	// serialization is not wedged.
	_ = h.srv.backend.Len()
	st := h.srv.store
	fed := h.srv.fed
	h.srv.mu.Unlock()
	if p, ok := st.(store.Prober); ok {
		if err := p.Healthy(); err != nil {
			storeP.OK = false
			storeP.Err = err.Error()
		}
	}

	httpP := probe{Name: "http", OK: !h.srv.httpOn.Load() || h.srv.httpLive.Load()}
	if !httpP.OK {
		httpP.Err = "gateway configured but not serving"
	}

	backbone := probe{Name: "backbone", OK: true}
	peersP := probe{Name: "peers", OK: true}
	if fed != nil {
		if hp, ok := fed.tr.(interface{ Healthy() error }); ok {
			if err := hp.Healthy(); err != nil {
				backbone.OK = false
				backbone.Err = err.Error()
			}
		}
		infos := fed.node.PeerInfos()
		recent := false
		for _, pi := range infos {
			if !pi.LastAnnounce.IsZero() && time.Since(pi.LastAnnounce) <= h.peerRecency {
				recent = true
				break
			}
		}
		switch {
		case len(infos) == 0:
			peersP.OK = false
			peersP.Err = "no backbone peers known"
		case !recent:
			peersP.OK = false
			peersP.Err = "no backbone peer heard recently"
		}
	}

	report := healthState{
		Healthy: storeP.OK && httpP.OK && backbone.OK,
		Checked: time.Now(),
		Probes:  []probe{storeP, httpP, backbone, peersP},
	}
	report.Ready = report.Healthy && peersP.OK
	healthyGauge.Set(report.Healthy)
	readyGauge.Set(report.Ready)

	h.mu.Lock()
	h.last = report
	h.mu.Unlock()
}

// state returns the latest cached health report.
func (h *healthChecker) state() healthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// close stops the probe loop and waits for it.
func (h *healthChecker) close() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}
