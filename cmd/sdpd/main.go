// Command sdpd runs a standalone S-Ariadne directory node over UDP: a
// real-network deployment of the semantic directory for infrastructure
// settings (the hybrid side of the paper's hybrid-network story). Clients
// (cmd/sdpctl) publish Amigo-S advertisements and resolve semantic
// queries with single-datagram JSON requests.
//
// Usage:
//
//	sdpd -listen :7474 -ontology media.xml -ontology servers.xml
//
// Protocol (one JSON object per datagram):
//
//	{"op":"register", "doc":"<service .../>"}
//	{"op":"deregister", "name":"MediaWorkstation"}
//	{"op":"query", "doc":"<service ...><required .../></service>"}
//	{"op":"add-ontology", "doc":"<ontology .../>"}
//	{"op":"get-table", "name":"<ontology uri>"}
//	{"op":"stats"}
//
// Every reply is {"ok":bool, "error":string, "hits":[...], "stats":{...}}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"sync"

	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/ontology"
)

// request is the wire format of client commands.
type request struct {
	Op   string `json:"op"`
	Doc  string `json:"doc,omitempty"`
	Name string `json:"name,omitempty"`
}

// response is the wire format of server replies.
type response struct {
	OK    bool            `json:"ok"`
	Error string          `json:"error,omitempty"`
	Hits  []discovery.Hit `json:"hits,omitempty"`
	Stats *statsBody      `json:"stats,omitempty"`
	Table json.RawMessage `json:"table,omitempty"`
}

type statsBody struct {
	Capabilities int      `json:"capabilities"`
	Ontologies   []string `json:"ontologies"`
}

// ontologyList collects repeated -ontology flags.
type ontologyList []string

func (l *ontologyList) String() string { return strings.Join(*l, ",") }

func (l *ontologyList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags)
	listen := flag.String("listen", ":7474", "UDP address to listen on")
	httpAddr := flag.String("http", "", "also serve an HTTP gateway on this address (optional)")
	state := flag.String("state", "", "journal file for durable registrations (optional)")
	var ontologies ontologyList
	flag.Var(&ontologies, "ontology", "ontology XML file to load (repeatable)")
	flag.Parse()

	srv, err := newServer(ontologies)
	if err != nil {
		log.Fatalf("sdpd: %v", err)
	}
	if *state != "" {
		applied, skipped, err := replayJournal(*state, srv)
		if err != nil {
			log.Fatalf("sdpd: %v", err)
		}
		if applied+skipped > 0 {
			log.Printf("sdpd: recovered %d journal entries (%d skipped)", applied, skipped)
		}
		j, err := openJournal(*state)
		if err != nil {
			log.Fatalf("sdpd: %v", err)
		}
		defer j.close()
		srv.journal = j
	}
	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		log.Fatalf("sdpd: resolve %q: %v", *listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		log.Fatalf("sdpd: listen: %v", err)
	}
	defer conn.Close()
	// Both front ends report termination on one channel so a failing HTTP
	// gateway takes the process down instead of dying silently in a
	// goroutine nothing joins.
	errCh := make(chan error, 2)
	if *httpAddr != "" {
		go func() {
			errCh <- serveHTTP(*httpAddr, srv)
		}()
	}
	log.Printf("sdpd: serving semantic discovery on %s (%d ontologies)", conn.LocalAddr(), len(ontologies))
	go func() {
		srv.serve(conn)
		errCh <- nil
	}()
	if err := <-errCh; err != nil {
		log.Fatalf("sdpd: %v", err)
	}
}

// server is the directory node state. With both the UDP and HTTP front
// ends funneling into handle, a mutex serializes request processing (the
// code registry and the journal are not internally synchronized; the
// per-request work is microseconds, so serialization is not a bottleneck
// for this tool).
type server struct {
	mu sync.Mutex
	// reg and backend are not internally synchronized; every request
	// handler mutates or reads them under mu.
	reg     *codes.Registry            // guarded by mu
	backend *discovery.SemanticBackend // guarded by mu
	journal *journal                   // guarded by mu
}

func newServer(ontologyFiles []string) (*server, error) {
	reg := codes.NewRegistry()
	s := &server{reg: reg, backend: discovery.NewSemanticBackend(reg)}
	for _, path := range ontologyFiles {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		err = s.addOntologyLocked(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("ontology %s: %w", path, err)
		}
	}
	return s, nil
}

func (s *server) addOntologyTextLocked(doc string) error {
	return s.addOntologyLocked(strings.NewReader(doc))
}

func (s *server) addOntologyLocked(r interface{ Read([]byte) (int, error) }) error {
	o, err := ontology.Decode(r)
	if err != nil {
		return err
	}
	cl, err := ontology.Classify(o)
	if err != nil {
		return err
	}
	table, err := codes.Encode(cl, codes.DefaultParams)
	if err != nil {
		return err
	}
	s.reg.Register(table)
	return nil
}

func (s *server) serve(conn *net.UDPConn) {
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := conn.ReadFromUDP(buf)
		if err != nil {
			log.Printf("sdpd: read: %v", err)
			return
		}
		resp := s.handle(buf[:n])
		data, err := json.Marshal(resp)
		if err != nil {
			log.Printf("sdpd: marshal reply: %v", err)
			continue
		}
		if _, err := conn.WriteToUDP(data, peer); err != nil {
			log.Printf("sdpd: write to %s: %v", peer, err)
		}
	}
}

func (s *server) handle(datagram []byte) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	var req request
	if err := json.Unmarshal(datagram, &req); err != nil {
		return response{Error: "malformed request: " + err.Error()}
	}
	switch req.Op {
	case "register":
		name, err := s.backend.Register([]byte(req.Doc))
		if err != nil {
			return response{Error: err.Error()}
		}
		if err := s.persistLocked(journalEntry{Op: "register", Doc: req.Doc}); err != nil {
			return response{Error: err.Error()}
		}
		log.Printf("sdpd: registered %s (%d capabilities total)", name, s.backend.Len())
		return response{OK: true}
	case "deregister":
		if !s.backend.Deregister(req.Name) {
			return response{Error: fmt.Sprintf("service %q not registered", req.Name)}
		}
		if err := s.persistLocked(journalEntry{Op: "deregister", Name: req.Name}); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "query":
		hits, err := s.backend.Query([]byte(req.Doc))
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, Hits: hits}
	case "add-ontology":
		if err := s.addOntologyTextLocked(req.Doc); err != nil {
			return response{Error: err.Error()}
		}
		if err := s.persistLocked(journalEntry{Op: "add-ontology", Doc: req.Doc}); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "get-table":
		// Thin clients fetch encoded code tables instead of running a
		// reasoner themselves (Section 3.2's code distribution).
		table, ok := s.reg.Resolve(req.Name)
		if !ok {
			return response{Error: fmt.Sprintf("no table for ontology %q", req.Name)}
		}
		data, err := codes.MarshalTable(table)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, Table: data}
	case "stats":
		return response{OK: true, Stats: &statsBody{
			Capabilities: s.backend.Len(),
			Ontologies:   s.reg.URIs(),
		}}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// persistLocked journals a successful mutation when durability is enabled.
func (s *server) persistLocked(e journalEntry) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.append(e)
}
