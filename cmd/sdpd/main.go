// Command sdpd runs a standalone S-Ariadne directory node over UDP: a
// real-network deployment of the semantic directory for infrastructure
// settings (the hybrid side of the paper's hybrid-network story). Clients
// (cmd/sdpctl) publish Amigo-S advertisements and resolve semantic
// queries with single-datagram JSON requests.
//
// Usage:
//
//	sdpd -listen :7474 -ontology media.xml -ontology servers.xml
//
// Daemons federate into a directory backbone with -federate (plus
// -peer seeds and optionally -advertise and -federate-transport): each
// daemon becomes a backbone directory exchanging announcements, Bloom
// summaries and forwarded queries over real UDP or TCP sockets, so a
// query at any daemon is answered from the whole federation, degrading
// to explicitly-partial results when peers die:
//
//	sdpd -listen :7474 -federate :8474
//	sdpd -listen :7475 -federate :8475 -peer 127.0.0.1:8474
//
// Protocol (one JSON object per datagram):
//
//	{"op":"register", "doc":"<service .../>"}
//	{"op":"deregister", "name":"MediaWorkstation"}
//	{"op":"query", "doc":"<service ...><required .../></service>"}
//	{"op":"add-ontology", "doc":"<ontology .../>"}
//	{"op":"get-table", "name":"<ontology uri>"}
//	{"op":"stats"}
//	{"op":"peers"}
//	{"op":"tenants"}
//
// With admission enabled (-auth-tokens and/or -auth-secret) every request
// additionally carries {"token":"..."}; denials come back with code
// "unauthenticated", "forbidden" or "rate_limited".
//
// Every reply is {"ok":bool, "error":string, "code":string, "hits":[...],
// "stats":{...}}; failed requests carry a machine-readable code alongside
// the human-readable error text. Query replies additionally carry a
// completeness marker: {"partial":true, "unreachable":["n4"]} means the
// answer is usable but some backbone directories never responded, so a
// better answer may exist (the paper's graceful-degradation contract).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sync/atomic"

	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/ontology"
	"sariadne/internal/store"
	"sariadne/internal/telemetry"
	"sariadne/internal/tenant"
	"sariadne/internal/transport"
)

// request is the wire format of client commands.
type request struct {
	Op   string `json:"op"`
	Doc  string `json:"doc,omitempty"`
	Name string `json:"name,omitempty"`
	// Token is the caller's bearer credential, consulted when the daemon
	// runs with admission enabled (-auth-tokens / -auth-secret). The HTTP
	// gateway fills it from the Authorization header.
	Token string `json:"token,omitempty"`
	// Trace asks for a hop-level trace of a query op: the reply carries
	// the span tree inline and the trace is retained in the flight
	// recorder for later retrieval via GET /traces/{id}.
	Trace bool `json:"trace,omitempty"`
}

// Machine-readable error codes carried in failed responses. The HTTP
// gateway maps them to status codes; UDP clients can branch on them
// without parsing English. Admission refusals reuse the tenant package's
// codes (tenant.CodeUnauthenticated / CodeForbidden / CodeRateLimited),
// which the gateway maps to 401 / 403 / 429.
const (
	codeBadRequest = "bad_request" // malformed or semantically invalid input
	codeNotFound   = "not_found"   // named service/ontology does not exist
	codeInternal   = "internal"    // server-side failure (journal, encoding)
)

// denialResponse renders an admission refusal (or an authenticator's
// internal fault) as a wire response.
func denialResponse(err error) response {
	if d, ok := tenant.Denied(err); ok {
		return response{Error: d.Reason, Code: d.Code}
	}
	return response{Error: err.Error(), Code: codeInternal}
}

// response is the wire format of server replies. Partial and Unreachable
// mirror discovery.Result: when the resolver could not reach every
// backbone directory the hits are still served, flagged as a lower bound.
type response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
	// Version is the advertisement version the directory assigned to a
	// successful register: re-publishing a name supersedes the previous
	// version, which stays listable via GET /services/{name}.
	Version     uint64           `json:"version,omitempty"`
	Hits        []discovery.Hit  `json:"hits,omitempty"`
	Partial     bool             `json:"partial,omitempty"`
	Unreachable []transport.Addr `json:"unreachable,omitempty"`
	// TraceID names the query's retained trace (explicitly requested or
	// picked up by the sampler); fetch it later from GET /traces/{id}.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Spans is the hop-level trace, inline — only when the request asked
	// for tracing (sampled queries just carry the ID).
	Spans []telemetry.Span `json:"spans,omitempty"`
	Peers   []peerEntry     `json:"peers,omitempty"`
	Stats   *statsBody      `json:"stats,omitempty"`
	Table   json.RawMessage `json:"table,omitempty"`
	Tenants *tenantsBody    `json:"tenants,omitempty"`
}

// tenantsBody is the admission table behind GET /tenants and the
// "tenants" op: enforcement mode, configured limits, one row per tenant.
type tenantsBody struct {
	Enforcing bool            `json:"enforcing"`
	Auth      string          `json:"auth"`
	Limits    tenant.Limits   `json:"limits"`
	Tenants   []tenant.Status `json:"tenants"`
}

// peerEntry is one backbone peer in a "peers" reply: the discovery
// layer's protocol view (summary freshness, give-up count) joined with
// the transport layer's socket stats when the substrate tracks them.
type peerEntry struct {
	discovery.PeerInfo
	Transport *transport.Peer `json:"transport,omitempty"`
}

type statsBody struct {
	Capabilities int      `json:"capabilities"`
	Ontologies   []string `json:"ontologies"`
}

// stringList collects repeated string flags (-ontology, -peer).
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// buildAuthenticator assembles the admission authenticator from the auth
// flags: a static token table, an HMAC verifier, both chained (static
// first, so operator tokens keep working alongside minted ones), or nil
// for the open pre-tenancy mode.
func buildAuthenticator(tokensPath, secret string) (tenant.Authenticator, error) {
	var chain tenant.Chain
	if tokensPath != "" {
		static, err := tenant.LoadStaticFile(tokensPath)
		if err != nil {
			return nil, err
		}
		chain = append(chain, static)
	}
	if secret != "" {
		h, err := tenant.NewHMAC([]byte(secret), nil)
		if err != nil {
			return nil, err
		}
		chain = append(chain, h)
	}
	switch len(chain) {
	case 0:
		return nil, nil
	case 1:
		return chain[0], nil
	default:
		return chain, nil
	}
}

// setupLogging installs the process-wide slog handler at the requested
// level and returns the root logger. Shared by sdpd's front ends; each
// component derives a tagged child via With("component", ...).
func setupLogging(level string) (*slog.Logger, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: l}))
	slog.SetDefault(logger)
	return logger, nil
}

func main() {
	listen := flag.String("listen", ":7474", "UDP address to listen on")
	httpAddr := flag.String("http", "", "also serve an HTTP gateway on this address (optional)")
	state := flag.String("state", "", "store file for durable registrations (optional)")
	storeKind := flag.String("store", "auto", "storage backend: auto, mem, jsonl or bolt (auto sniffs the -state file)")
	syncEvery := flag.Int("sync-every", 1, "fsync the store once every N appends (1 = per-entry, the safest)")
	migrateTo := flag.String("migrate-store", "", "migrate the -state history into this path (backend from -store or the path's extension), then exit")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof on the HTTP gateway")
	federate := flag.String("federate", "", "socket address for directory backbone traffic; empty runs standalone")
	fedTransport := flag.String("federate-transport", "udp", "backbone substrate: udp or tcp")
	advertise := flag.String("advertise", "", "backbone address announced to peers (defaults to the bound -federate address)")
	traceSample := flag.Int("trace-sample", 64, "trace every Nth query into the flight recorder (0 disables sampling)")
	slowQuery := flag.Duration("slow-query", 0, "retain queries at least this slow in the flight recorder (0 = half the query timeout)")
	healthInterval := flag.Duration("health-interval", time.Second, "component health probe interval behind /healthz and /readyz")
	sampleEvery := flag.Duration("sample-every", 5*time.Second, "telemetry time-series sampling cadence behind GET /timeseries (0 disables)")
	telemetryJournal := flag.String("telemetry-journal", "", "directory for the durable telemetry journal: sampler ticks persist across restarts behind GET /timeseries (optional)")
	watchEvery := flag.Duration("watch-every", 0, "drift-watchdog sweep cadence over the telemetry history (0 disables)")
	watchWindow := flag.Duration("watch-window", 0, "sample window each watchdog sweep examines (default 10x -watch-every)")
	watchGoroutines := flag.Float64("watch-goroutine-growth", 0, "goroutine_growth threshold in goroutines/min (0 = default 30, negative disables)")
	watchHeap := flag.Float64("watch-heap-growth-bytes", 0, "memory_growth threshold in heap bytes/min (0 = default 8MiB, negative disables)")
	watchStale := flag.Duration("watch-summary-stale", 0, "summary_stale bound on summary-push stalls (0 = default 5m, negative disables)")
	watchFlap := flag.Float64("watch-flap-per-min", 0, "election_flap threshold in role transitions/min (0 = default 6, negative disables)")
	watchAppendFactor := flag.Float64("watch-append-p99-factor", 0, "append_latency_step factor over the baseline-half store append p99 (0 = default 8, negative disables)")
	watchDenials := flag.Float64("watch-denial-per-min", 0, "denial_spike absolute floor in tenant denials/min (0 = default 30, negative disables)")
	watchHeapProfile := flag.Bool("watch-heap-profile", false, "capture one pprof heap profile beside the journal on the first memory_growth alert")
	chaosLeakGoroutines := flag.Int("chaos-leak-goroutines", 0, "FAULT INJECTION: leak this many goroutines per second so soak drills can watch the watchdog fire")
	compactEvery := flag.Duration("compact-every", 0, "compact the store on this cadence, off the request path (0 disables)")
	authTokens := flag.String("auth-tokens", "", "static bearer-token file (`token tenant [role]` per line); enables admission")
	authSecret := flag.String("auth-secret", "", "shared HMAC secret (>= 16 bytes) accepting sdpctl-minted sdp1 tokens; enables admission")
	anonReads := flag.Bool("anon-reads", false, "with admission enabled, serve token-less reads as the anonymous tenant")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant mutating-op rate limit in ops/sec (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 10, "per-tenant token-bucket burst on top of -tenant-rate")
	tenantMaxServices := flag.Int("tenant-max-services", 0, "max live advertisements per tenant (0 = unlimited)")
	tenantMaxPublishes := flag.Int("tenant-max-publishes-min", 0, "max admitted mutating ops per tenant per minute (0 = unlimited)")
	var ontologies stringList
	flag.Var(&ontologies, "ontology", "ontology XML file to load (repeatable)")
	var peers stringList
	flag.Var(&peers, "peer", "backbone address of another daemon to seed from (repeatable)")
	flag.Parse()

	logger, err := setupLogging(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpd: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	if *migrateTo != "" {
		stats, err := migrateStore(*state, *migrateTo, *storeKind)
		if err != nil {
			fatal("store migration", err)
		}
		logger.Info("store migrated", "component", "store",
			"from", *state, "to", *migrateTo,
			"replayed", stats.Replayed, "skipped", stats.Skipped,
			"torn_tail", stats.TornTail, "live", stats.Live)
		return
	}

	srv, err := newServer(ontologies)
	if err != nil {
		fatal("startup", err)
	}
	srv.sampleEvery = *traceSample
	// The gate must exist before replay so recovered registrations rebuild
	// per-tenant live-service counts (durable quotas).
	auth, err := buildAuthenticator(*authTokens, *authSecret)
	if err != nil {
		fatal("admission", err)
	}
	srv.gate = tenant.NewGatekeeper(tenant.Config{
		Auth:                  auth,
		AnonymousReads:        *anonReads,
		Rate:                  *tenantRate,
		Burst:                 *tenantBurst,
		MaxLiveServices:       *tenantMaxServices,
		MaxPublishesPerMinute: *tenantMaxPublishes,
	})
	if srv.gate.Enforcing() {
		logger.Info("tenant admission enabled", "component", "tenant",
			"auth", srv.gate.AuthName(), "anon_reads", *anonReads,
			"rate", *tenantRate, "burst", *tenantBurst,
			"max_services", *tenantMaxServices, "max_publishes_min", *tenantMaxPublishes)
	}
	if *state != "" || *storeKind == "mem" {
		stLog := logger.With("component", "store")
		st, err := openStore(*storeKind, *state, store.Options{SyncEvery: *syncEvery})
		if err != nil {
			fatal("store open", err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				stLog.Error("store close", "err", err)
			}
		}()
		applied, skipped, torn, err := replayStore(st, srv)
		if err != nil {
			fatal("store replay", err)
		}
		if applied+skipped > 0 || torn {
			stLog.Info("recovered store records",
				"applied", applied, "skipped", skipped, "torn_tail", torn)
		}
		srv.store = st
		if *compactEvery > 0 {
			cp := startCompactor(st, *compactEvery, stLog)
			defer cp.close()
		}
	} else if *compactEvery > 0 {
		logger.Warn("-compact-every has no effect without a store")
	}
	if *federate != "" {
		fed, err := startFederation(srv, federationOptions{
			Listen:      *federate,
			Transport:   *fedTransport,
			Advertise:   *advertise,
			Peers:       peers,
			TraceSample: *traceSample,
			SlowQuery:   *slowQuery,
		}, logger)
		if err != nil {
			fatal("federation", err)
		}
		defer fed.close()
	} else if len(peers) > 0 || *advertise != "" {
		logger.Warn("-peer/-advertise have no effect without -federate")
	}
	srv.httpOn.Store(*httpAddr != "")
	hc := startHealthChecker(srv, *healthInterval, 0)
	defer hc.close()
	// The soak pipeline: runtime collector -> sampler -> sample log
	// (durable journal or bounded memory) -> drift watchdog.
	var sampleLog telemetry.SampleLog
	var logSample func(telemetry.JournalSample)
	if *telemetryJournal != "" {
		tjLog := logger.With("component", "telemetry")
		jl, err := telemetry.OpenJournal(*telemetryJournal, telemetry.JournalOptions{})
		if err != nil {
			fatal("telemetry journal", err)
		}
		defer func() {
			if err := jl.Close(); err != nil {
				tjLog.Error("journal close", "err", err)
			}
		}()
		if jl.TornTail() {
			tjLog.Warn("telemetry journal recovered from a torn tail", "dir", *telemetryJournal)
		}
		tjLog.Info("telemetry journal open", "dir", *telemetryJournal, "history", len(jl.History()))
		srv.journal = jl
		sampleLog = jl
		logSample = func(s telemetry.JournalSample) {
			if err := jl.Append(s); err != nil {
				tjLog.Error("journal append", "err", err)
			}
		}
	} else if *watchEvery > 0 {
		// Watching without durability: a bounded in-memory log feeds the
		// detectors and is lost on restart.
		ml := telemetry.NewMemLog(720)
		sampleLog = ml
		logSample = ml.Append
	}
	if *sampleEvery > 0 {
		// 720 samples at the default 5s cadence keeps an hour of windowed
		// quantile history at constant memory.
		sampler := telemetry.StartSamplerConfig(telemetry.Default(), *sampleEvery, 720, telemetry.SamplerConfig{
			Collect: telemetry.SampleRuntime,
			OnSample: func(s telemetry.Sample) {
				if logSample != nil {
					logSample(telemetry.JournalSample{Time: time.Now(), Metrics: s.Metrics})
				}
			},
		})
		defer sampler.Stop()
		srv.sampler = sampler
	} else if sampleLog != nil {
		logger.Warn("-telemetry-journal/-watch-every have nothing to read without -sample-every > 0")
	}
	if *watchEvery > 0 {
		wdLog := logger.With("component", "watchdog")
		detectors := telemetry.StandardDetectors(telemetry.Thresholds{
			GoroutinesPerMin:  *watchGoroutines,
			HeapBytesPerMin:   *watchHeap,
			SummaryStaleAfter: *watchStale,
			ElectionsPerMin:   *watchFlap,
			AppendP99Factor:   *watchAppendFactor,
			DenialsPerMin:     *watchDenials,
		})
		var heapProfileOnce sync.Once
		wd := telemetry.NewWatchdog(telemetry.WatchdogConfig{
			Log:       sampleLog,
			Detectors: detectors,
			Interval:  *watchEvery,
			Window:    *watchWindow,
			Recorder:  telemetry.FlightRecorder(),
			OnAlert: func(a telemetry.Alert) {
				wdLog.Warn("drift alert fired", "code", a.Code, "severity", a.Severity,
					"metric", a.Metric, "value", a.Value, "threshold", a.Threshold,
					"evidence", a.Evidence)
				if *watchHeapProfile && a.Code == telemetry.AlertMemoryGrowth {
					// One capture per process: the first leak sighting is the
					// interesting heap; later captures would just be bigger.
					heapProfileOnce.Do(func() {
						dir := *telemetryJournal
						if dir == "" {
							dir = os.TempDir()
						}
						path := filepath.Join(dir, "heap-"+a.At.UTC().Format("20060102T150405Z")+".pprof")
						if err := telemetry.CaptureHeapProfile(path); err != nil {
							wdLog.Error("heap profile capture", "err", err)
							return
						}
						wdLog.Warn("heap profile captured", "path", path)
					})
				}
			},
		})
		wd.Start()
		defer wd.Stop()
		srv.watchdog = wd
		wdLog.Info("drift watchdog running", "every", *watchEvery, "detectors", len(detectors))
	}
	if *chaosLeakGoroutines > 0 {
		logger.Warn("fault injection active: leaking goroutines",
			"component", "chaos", "per_sec", *chaosLeakGoroutines)
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for range t.C {
				for i := 0; i < *chaosLeakGoroutines; i++ {
					go func() { select {} }()
				}
			}
		}()
	}
	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		fatal("resolve "+*listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		fatal("listen", err)
	}
	defer conn.Close()
	// Both front ends report termination on one channel so a failing HTTP
	// gateway takes the process down instead of dying silently in a
	// goroutine nothing joins.
	errCh := make(chan error, 2)
	if *httpAddr != "" {
		go func() {
			errCh <- serveHTTP(*httpAddr, srv, *pprofFlag)
		}()
	}
	logger.Info("serving semantic discovery",
		"component", "udp", "addr", conn.LocalAddr().String(), "ontologies", len(ontologies))
	go func() {
		srv.serve(conn)
		errCh <- nil
	}()
	if err := <-errCh; err != nil {
		fatal("front end failed", err)
	}
}

// server is the directory node state. With both the UDP and HTTP front
// ends funneling into handle, a mutex serializes request processing (the
// code registry and the journal are not internally synchronized; the
// per-request work is microseconds, so serialization is not a bottleneck
// for this tool).
type server struct {
	mu sync.Mutex
	// reg and backend are not internally synchronized; every request
	// handler mutates or reads them under mu.
	reg     *codes.Registry            // guarded by mu
	backend *discovery.SemanticBackend // guarded by mu
	// store persists mutations when durability is enabled (-state); nil
	// runs fully in-memory. Backends are interchangeable via -store.
	store store.Store // guarded by mu
	// adverts is the advertisement version ledger: every version published
	// under each name, live or withdrawn, behind GET /services.
	adverts map[string]*advertHistory // guarded by mu
	// gate is the tenant admission layer: every request authenticates
	// through it, every mutation is admitted by it before touching the
	// backend. newServer installs an open (non-enforcing) gate; main
	// replaces it from the -auth-* flags before replay and the front ends.
	// The Gatekeeper is internally synchronized, but process calls it under
	// mu like everything else.
	gate *tenant.Gatekeeper
	// resolve answers query requests. The default resolver consults the
	// node-local backend only; a deployment embedding a backbone node (or a
	// test exercising degradation) swaps in one that returns federated,
	// possibly partial results. traced asks for a hop-level trace. Called
	// with mu held.
	resolve func(doc []byte, traced bool) (discovery.Result, error) // guarded by mu
	// fed is the daemon's backbone membership; nil when standalone.
	fed *federation // guarded by mu
	// sampleEvery traces every Nth standalone query (federated sampling
	// lives in the discovery node); sampleCount counts them.
	sampleEvery int    // guarded by mu
	sampleCount uint64 // guarded by mu
	// health is the daemon's component prober; nil until started.
	health *healthChecker // guarded by mu
	// sampler feeds the telemetry time-series ring behind GET
	// /timeseries; nil when -sample-every is 0. Set before the front
	// ends start, read-only afterwards.
	sampler *telemetry.Sampler
	// journal is the durable telemetry journal (-telemetry-journal):
	// sampler ticks persisted across restarts, preferred over the ring by
	// GET /timeseries. Nil without the flag. Set before the front ends
	// start, read-only afterwards.
	journal *telemetry.Journal
	// watchdog sweeps drift detectors over the sample history behind GET
	// /alerts; nil when -watch-every is 0. Set before the front ends
	// start, read-only afterwards.
	watchdog *telemetry.Watchdog
	// httpOn records that an HTTP gateway was configured; httpLive that it
	// is currently bound and serving. Health probes compare the two.
	httpOn   atomic.Bool
	httpLive atomic.Bool
	log      *slog.Logger
}

// localNode names the standalone daemon in spans it synthesizes itself;
// federated daemons use their backbone transport address instead.
const localNode = "local"

func newServer(ontologyFiles []string) (*server, error) {
	reg := codes.NewRegistry()
	s := &server{
		reg:         reg,
		backend:     discovery.NewSemanticBackend(reg),
		adverts:     make(map[string]*advertHistory),
		gate:        tenant.NewGatekeeper(tenant.Config{}),
		sampleEvery: 64,
		log:         slog.With("component", "directory"),
	}
	s.resolve = func(doc []byte, traced bool) (discovery.Result, error) {
		// A standalone directory has no backbone to lose peers on, so the
		// local answer is complete by construction — but it still samples
		// and traces so /traces works without federation.
		sampled := false
		s.sampleCount++
		if !traced && s.sampleEvery > 0 && s.sampleCount%uint64(s.sampleEvery) == 0 {
			traced, sampled = true, true
		}
		var trace uint64
		var spans []telemetry.Span
		if traced {
			trace = telemetry.NextTraceID()
			spans = append(spans, telemetry.NewSpan(trace, localNode, telemetry.EventReceived))
		}
		start := time.Now()
		hits, err := s.backend.Query(doc)
		if err != nil {
			return discovery.Result{}, err
		}
		if traced {
			m := telemetry.NewSpan(trace, localNode, telemetry.EventLocalMatch)
			m.Hits = len(hits)
			m.Dur = time.Since(start)
			spans = append(spans, m)
			telemetry.FlightRecorder().RecordTrace(telemetry.TraceRecord{
				ID: trace, Node: localNode, Start: start, Dur: time.Since(start),
				Hits: len(hits), Sampled: sampled, Spans: spans,
			})
		}
		return discovery.Result{Hits: hits, Trace: trace, Spans: spans}, nil
	}
	for _, path := range ontologyFiles {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		err = s.addOntologyLocked(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("ontology %s: %w", path, err)
		}
	}
	return s, nil
}

func (s *server) addOntologyTextLocked(doc string) error {
	return s.addOntologyLocked(strings.NewReader(doc))
}

func (s *server) addOntologyLocked(r interface{ Read([]byte) (int, error) }) error {
	o, err := ontology.Decode(r)
	if err != nil {
		return err
	}
	cl, err := ontology.Classify(o)
	if err != nil {
		return err
	}
	table, err := codes.Encode(cl, codes.DefaultParams)
	if err != nil {
		return err
	}
	s.reg.Register(table)
	return nil
}

func (s *server) serve(conn *net.UDPConn) {
	udpLog := slog.With("component", "udp")
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := conn.ReadFromUDP(buf)
		if err != nil {
			udpLog.Error("read", "err", err)
			return
		}
		resp := s.handle(buf[:n])
		data, err := json.Marshal(resp)
		if err != nil {
			udpLog.Error("marshal reply", "err", err)
			continue
		}
		if _, err := conn.WriteToUDP(data, peer); err != nil {
			udpLog.Error("write reply", "peer", peer.String(), "err", err)
		}
	}
}

// handle times and counts one request, then runs it through process.
func (s *server) handle(datagram []byte) response {
	start := time.Now()
	resp := s.process(datagram)
	requestsTotal.Inc()
	if !resp.OK {
		requestErrorsTotal.Inc()
	}
	requestSeconds.ObserveSince(start)
	return resp
}

func (s *server) process(datagram []byte) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	var req request
	if err := json.Unmarshal(datagram, &req); err != nil {
		return response{Error: "malformed request: " + err.Error(), Code: codeBadRequest}
	}
	// Every op authenticates first. An open-mode daemon gets the wildcard
	// identity back at zero cost; an enforcing daemon turns a missing or
	// bad token into a 401 here, before any work happens.
	id, err := s.gate.Authenticate(req.Token)
	if err != nil {
		return denialResponse(err)
	}
	switch req.Op {
	case "register":
		// Admission runs on the cheaply pre-parsed name BEFORE the backend
		// sees the advertisement: a denied publish never enters the
		// capability DAG, so the Bloom summary pushed to federation peers
		// cannot leak it.
		name, err := s.backend.ServiceName([]byte(req.Doc))
		if err != nil {
			return response{Error: err.Error(), Code: codeBadRequest}
		}
		prior := s.adverts[name]
		newService := prior == nil || !prior.Live
		if err := s.gate.AdmitPublish(id, name, newService); err != nil {
			return denialResponse(err)
		}
		if _, err := s.backend.Register([]byte(req.Doc)); err != nil {
			return response{Error: err.Error(), Code: codeBadRequest}
		}
		// The directory assigns the advertisement version: re-publishing a
		// name supersedes the old version, which stays listable in the
		// ledger. The assigned version is persisted with the record and
		// returned to the publisher.
		version := s.recordAdvertLocked(name, req.Doc, 0)
		owner := advertOwner(name, "")
		if err := s.persistLocked(store.Record{Op: store.OpRegister, Doc: req.Doc, Name: name, Version: version, Tenant: owner}); err != nil {
			return response{Error: err.Error(), Code: codeInternal}
		}
		if newService {
			s.gate.ServiceLive(owner, +1)
		}
		s.refreshLocked()
		s.log.Info("registered service", "name", name, "version", version, "capabilities", s.backend.Len())
		return response{OK: true, Version: version}
	case "deregister":
		if err := s.gate.AdmitDeregister(id, req.Name); err != nil {
			return denialResponse(err)
		}
		if !s.backend.Deregister(req.Name) {
			return response{Error: fmt.Sprintf("service %q not registered", req.Name), Code: codeNotFound}
		}
		s.dropAdvertLocked(req.Name)
		owner := advertOwner(req.Name, "")
		if err := s.persistLocked(store.Record{Op: store.OpDeregister, Name: req.Name, Tenant: owner}); err != nil {
			return response{Error: err.Error(), Code: codeInternal}
		}
		s.gate.ServiceLive(owner, -1)
		s.refreshLocked()
		return response{OK: true}
	case "query":
		res, err := s.resolve([]byte(req.Doc), req.Trace)
		if err != nil {
			return response{Error: err.Error(), Code: codeBadRequest}
		}
		if res.Partial() {
			partialRepliesTotal.Inc()
			s.log.Warn("serving partial query result",
				"hits", len(res.Hits), "unreachable", len(res.Unreachable))
		}
		resp := response{OK: true, Hits: res.Hits, Partial: res.Partial(),
			Unreachable: res.Unreachable, TraceID: res.Trace}
		if req.Trace {
			resp.Spans = res.Spans
		}
		return resp
	case "add-ontology":
		if err := s.gate.AdmitOntology(id); err != nil {
			return denialResponse(err)
		}
		if err := s.addOntologyTextLocked(req.Doc); err != nil {
			return response{Error: err.Error(), Code: codeBadRequest}
		}
		if err := s.persistLocked(store.Record{Op: store.OpAddOntology, Doc: req.Doc}); err != nil {
			return response{Error: err.Error(), Code: codeInternal}
		}
		return response{OK: true}
	case "get-table":
		// Thin clients fetch encoded code tables instead of running a
		// reasoner themselves (Section 3.2's code distribution).
		table, ok := s.reg.Resolve(req.Name)
		if !ok {
			return response{Error: fmt.Sprintf("no table for ontology %q", req.Name), Code: codeNotFound}
		}
		data, err := codes.MarshalTable(table)
		if err != nil {
			return response{Error: err.Error(), Code: codeInternal}
		}
		return response{OK: true, Table: data}
	case "stats":
		return response{OK: true, Stats: &statsBody{
			Capabilities: s.backend.Len(),
			Ontologies:   s.reg.URIs(),
		}}
	case "peers":
		if s.fed == nil {
			return response{Error: "daemon is not federated (run with -federate)", Code: codeBadRequest}
		}
		return response{OK: true, Peers: s.fed.peers()}
	case "tenants":
		if err := s.gate.AdmitAdmin(id); err != nil {
			return denialResponse(err)
		}
		return response{OK: true, Tenants: &tenantsBody{
			Enforcing: s.gate.Enforcing(),
			Auth:      s.gate.AuthName(),
			Limits:    s.gate.Limits(),
			Tenants:   s.gate.Tenants(),
		}}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op), Code: codeBadRequest}
	}
}

// refreshLocked pushes the post-mutation Bloom summary to backbone peers
// when federated; standalone daemons have nobody to tell.
func (s *server) refreshLocked() {
	if s.fed != nil {
		s.fed.refresh()
	}
}

// persistLocked appends a successful mutation to the store when
// durability is enabled.
func (s *server) persistLocked(rec store.Record) error {
	if s.store == nil {
		return nil
	}
	return s.store.Append(rec)
}
