package main

import (
	"log/slog"
	"time"

	"sariadne/internal/store"
)

// compactor periodically rewrites the store to its canonical folded
// state (-compact-every), bounding replay cost on long-lived daemons
// without waiting for a restart. It runs off the request path: Store
// implementations are internally synchronized, so Compact proceeds
// concurrently with request handling and never takes the server mutex.
type compactor struct {
	st       store.Store
	interval time.Duration
	log      *slog.Logger

	stop chan struct{}
	done chan struct{}
}

// startCompactor launches the compaction loop over an open store.
func startCompactor(st store.Store, interval time.Duration, log *slog.Logger) *compactor {
	c := &compactor{
		st:       st,
		interval: interval,
		log:      log,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.loop()
	return c
}

func (c *compactor) loop() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			start := time.Now()
			if err := c.st.Compact(); err != nil {
				// The store outlives a failed compaction (Compact is atomic);
				// log and try again next tick. ErrClosed means shutdown won
				// the race with the ticker.
				if err != store.ErrClosed {
					c.log.Error("background compaction", "err", err)
				}
				continue
			}
			c.log.Debug("compacted store", "took", time.Since(start))
		}
	}
}

// close stops the compaction loop and waits for it.
func (c *compactor) close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}
