package main

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"sariadne/internal/discovery"
	"sariadne/internal/election"
	"sariadne/internal/transport"
)

// federationOptions collects the backbone bootstrap flags.
type federationOptions struct {
	// Listen is the socket address for backbone traffic (distinct from
	// the client-facing -listen port). Empty disables federation.
	Listen string
	// Transport picks the substrate: "udp" (default) or "tcp".
	Transport string
	// Advertise is the backbone address announced to peers; defaults to
	// the bound address, which daemons behind NAT or binding 0.0.0.0 must
	// override with something dialable.
	Advertise string
	// Peers are static seed addresses of other daemons' backbone ports.
	Peers []string
	// TraceSample traces every Nth query into the flight recorder; zero
	// disables sampling (the -trace-sample flag, zero-is-off convention).
	TraceSample int
	// SlowQuery is the retention threshold for slow queries; zero keeps
	// the discovery default (half the query timeout).
	SlowQuery time.Duration
}

// federation is a daemon's membership in a directory backbone: a
// discovery node over a socket transport, sharing the server's backend,
// promoted to directory immediately (daemons are infrastructure — the
// paper's on-the-fly election is for the ad hoc side).
type federation struct {
	node *discovery.Node
	tr   transport.Transport
	log  *slog.Logger
}

// startFederation boots the backbone side of a daemon and rewires the
// server: queries resolve through the federated node (forwarding to
// peers whose Bloom summaries match, degrading to partial results when
// peers die), and client-side mutations push summary refreshes so remote
// views keep up.
func startFederation(srv *server, opts federationOptions, logger *slog.Logger) (*federation, error) {
	var (
		tr  transport.Transport
		err error
	)
	switch opts.Transport {
	case "", "udp":
		tr, err = transport.NewUDP(transport.UDPConfig{
			Listen:    opts.Listen,
			Advertise: opts.Advertise,
			Codec:     discovery.WireCodec{},
			Seeds:     opts.Peers,
		})
	case "tcp":
		tr, err = transport.NewTCP(transport.TCPConfig{
			Listen:    opts.Listen,
			Advertise: opts.Advertise,
			Codec:     discovery.WireCodec{},
			Seeds:     opts.Peers,
		})
	default:
		return nil, fmt.Errorf("unknown federation transport %q (want udp or tcp)", opts.Transport)
	}
	if err != nil {
		return nil, err
	}

	// The flag convention is zero-is-off; the discovery config's is
	// zero-is-default, negative-is-off.
	sampleEvery := opts.TraceSample
	if sampleEvery == 0 {
		sampleEvery = -1
	}
	node := discovery.NewNode(tr, srv.backend, discovery.Config{
		// Client front ends register one service per request; push the
		// updated summary immediately rather than batching.
		SummaryPushEvery: 1,
		// Daemons never self-elect: the backbone is static infrastructure
		// and election payloads are not wire-encodable anyway.
		Election:           election.Config{ElectionTimeout: 24 * time.Hour},
		TraceSampleEvery:   sampleEvery,
		SlowQueryThreshold: opts.SlowQuery,
	})
	node.Start(context.Background())
	node.BecomeDirectory()

	f := &federation{node: node, tr: tr, log: logger.With("component", "federation")}
	srv.mu.Lock()
	srv.fed = f
	srv.resolve = f.resolveFederated
	srv.mu.Unlock()
	// Journal-recovered registrations happened before the backbone came
	// up; fold them into the first summary push.
	node.RefreshSummary()
	f.log.Info("joined directory backbone",
		"transport", tr.ID(), "kind", opts.Transport, "seeds", len(opts.Peers))
	return f, nil
}

// resolveFederated answers a client query through the backbone node:
// local semantic match first, then Bloom-selected forwarding to peer
// directories, with the retry/hedging machinery turning dead peers into
// an explicit Unreachable marker instead of a hung request.
func (f *federation) resolveFederated(doc []byte, traced bool) (discovery.Result, error) {
	// The node bounds forwarding by its own QueryTimeout; the context is
	// a safety net above it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if traced {
		return f.node.DiscoverTrace(ctx, doc)
	}
	return f.node.DiscoverResult(ctx, doc)
}

// refresh propagates an out-of-band backend mutation (client register or
// deregister) to the backbone: recompute the Bloom summary and push it.
func (f *federation) refresh() {
	f.node.RefreshSummary()
}

// peers snapshots the backbone view, joining the protocol layer's per
// peer state with the transport layer's socket stats for the same
// address.
func (f *federation) peers() []peerEntry {
	infos := f.node.PeerInfos()
	byAddr := make(map[transport.Addr]transport.Peer)
	if pl, ok := f.tr.(transport.PeerLister); ok {
		for _, p := range pl.Peers() {
			byAddr[p.Addr] = p
		}
	}
	out := make([]peerEntry, 0, len(infos))
	for _, pi := range infos {
		e := peerEntry{PeerInfo: pi}
		if tp, ok := byAddr[pi.Addr]; ok {
			e.Transport = &tp
		}
		out = append(out, e)
	}
	return out
}

// close tears the backbone membership down.
func (f *federation) close() {
	f.node.Stop()
	if err := f.tr.Close(); err != nil {
		f.log.Error("transport close", "err", err)
	}
}
