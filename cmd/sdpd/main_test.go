package main

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		data, err := ontology.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		resp := s.handle(mustJSON(t, request{Op: "add-ontology", Doc: string(data)}))
		if !resp.OK {
			t.Fatalf("add-ontology: %s", resp.Error)
		}
	}
	return s
}

func mustJSON(t *testing.T, req request) []byte {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustDoc(t *testing.T, svc *profile.Service) string {
	t.Helper()
	doc, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	return string(doc)
}

func TestHandleRegisterQueryDeregister(t *testing.T) {
	s := newTestServer(t)

	resp := s.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())}))
	if !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}

	resp = s.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService())}))
	if !resp.OK || len(resp.Hits) != 1 || resp.Hits[0].Distance != 3 {
		t.Fatalf("query: %+v", resp)
	}

	resp = s.handle(mustJSON(t, request{Op: "stats"}))
	if !resp.OK || resp.Stats.Capabilities != 2 || len(resp.Stats.Ontologies) != 2 {
		t.Fatalf("stats: %+v", resp)
	}

	resp = s.handle(mustJSON(t, request{Op: "deregister", Name: "MediaWorkstation"}))
	if !resp.OK {
		t.Fatalf("deregister: %s", resp.Error)
	}
	resp = s.handle(mustJSON(t, request{Op: "deregister", Name: "MediaWorkstation"}))
	if resp.OK {
		t.Fatal("double deregister succeeded")
	}
	resp = s.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService())}))
	if !resp.OK || len(resp.Hits) != 0 {
		t.Fatalf("query after deregister: %+v", resp)
	}
}

// TestHandleQueryPartialMarker: when the resolver reports degraded
// backbone coverage, the UDP reply carries the completeness marker
// alongside the usable hits instead of hiding the gap.
func TestHandleQueryPartialMarker(t *testing.T) {
	s := newTestServer(t)
	resp := s.handle(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())}))
	if !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	local := s.resolve
	s.resolve = func(doc []byte, traced bool) (discovery.Result, error) {
		res, err := local(doc, traced)
		res.Unreachable = append(res.Unreachable, "n4", "n9")
		return res, err
	}

	resp = s.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService())}))
	if !resp.OK || len(resp.Hits) != 1 {
		t.Fatalf("query: %+v", resp)
	}
	if !resp.Partial || len(resp.Unreachable) != 2 || resp.Unreachable[0] != "n4" {
		t.Fatalf("completeness marker lost: %+v", resp)
	}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"partial":true`, `"unreachable":["n4","n9"]`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("wire reply %s missing %s", data, want)
		}
	}
}

func TestHandleErrors(t *testing.T) {
	s := newTestServer(t)
	for name, datagram := range map[string][]byte{
		"malformed json":   []byte("{nope"),
		"unknown op":       mustJSON(t, request{Op: "fly"}),
		"bad register doc": mustJSON(t, request{Op: "register", Doc: "junk"}),
		"bad query doc":    mustJSON(t, request{Op: "query", Doc: "junk"}),
		"bad ontology":     mustJSON(t, request{Op: "add-ontology", Doc: "junk"}),
	} {
		if resp := s.handle(datagram); resp.OK {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestNewServerBadFile(t *testing.T) {
	if _, err := newServer([]string{"/nonexistent/ontology.xml"}); err == nil {
		t.Fatal("accepted missing ontology file")
	}
}

func TestServeOverUDP(t *testing.T) {
	s := newTestServer(t)
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go s.serve(conn)

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(mustJSON(t, request{Op: "register", Doc: mustDoc(t, profile.WorkstationService())})); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), `"ok":true`) {
		t.Fatalf("reply = %s", buf[:n])
	}
}

func TestStringListFlag(t *testing.T) {
	var l stringList
	if err := l.Set("a.xml"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("b.xml"); err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "a.xml,b.xml" {
		t.Fatalf("String = %q", got)
	}
}

func TestHandleGetTable(t *testing.T) {
	s := newTestServer(t)
	resp := s.handle(mustJSON(t, request{Op: "get-table", Name: profile.MediaOntologyURI}))
	if !resp.OK || len(resp.Table) == 0 {
		t.Fatalf("get-table: %+v", resp)
	}
	table, err := codes.UnmarshalTable(resp.Table)
	if err != nil {
		t.Fatalf("returned table does not parse: %v", err)
	}
	if !table.Subsumes("Resource", "Movie") {
		t.Fatal("shipped table lost subsumption")
	}
	if resp := s.handle(mustJSON(t, request{Op: "get-table", Name: "http://nope"})); resp.OK {
		t.Fatal("get-table for unknown ontology succeeded")
	}
}
