package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sariadne/internal/profile"
	"sariadne/internal/tenant"
)

// enforcingServer builds a test directory with static-token admission:
// alice (publisher), bob (reader), root (admin).
func enforcingServer(t *testing.T, cfg tenant.Config) *server {
	t.Helper()
	s := newTestServer(t)
	if cfg.Auth == nil {
		static, err := tenant.ParseStatic(strings.NewReader("ta alice\ntb bob reader\ntr root admin\n"))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Auth = static
	}
	s.gate = tenant.NewGatekeeper(cfg)
	return s
}

func namedDoc(t *testing.T, name string) string {
	t.Helper()
	svc := profile.WorkstationService()
	svc.Name = name
	return mustDoc(t, svc)
}

func TestAdmissionUDP(t *testing.T) {
	s := enforcingServer(t, tenant.Config{})

	// No token, unknown token: 401-class denials before any work.
	for _, token := range []string{"", "bogus"} {
		resp := s.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/ws"), Token: token}))
		if resp.OK || resp.Code != tenant.CodeUnauthenticated {
			t.Fatalf("token %q: %+v", token, resp)
		}
	}
	// Reads need a credential too on a strict daemon.
	if resp := s.handle(mustJSON(t, request{Op: "stats"})); resp.OK || resp.Code != tenant.CodeUnauthenticated {
		t.Fatalf("anonymous stats on strict daemon: %+v", resp)
	}

	// Un-namespaced and cross-tenant publishes are forbidden.
	resp := s.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "ws"), Token: "ta"}))
	if resp.OK || resp.Code != tenant.CodeForbidden || !strings.Contains(resp.Error, "alice/ws") {
		t.Fatalf("un-namespaced publish: %+v", resp)
	}
	resp = s.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "bob/ws"), Token: "ta"}))
	if resp.OK || resp.Code != tenant.CodeForbidden {
		t.Fatalf("cross-tenant publish: %+v", resp)
	}
	// None of the denials may have touched the backend: the Bloom summary
	// is regenerated from it, so a rejected advertisement must never be
	// observable there. newTestServer's ontologies contribute 0 services.
	if n := s.backend.Len(); n != 0 {
		t.Fatalf("denied publishes leaked %d capabilities into the backend", n)
	}

	// The happy path: a namespaced publish under the owner's token.
	resp = s.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/ws"), Token: "ta"}))
	if !resp.OK || resp.Version != 1 {
		t.Fatalf("admitted publish: %+v", resp)
	}
	// Readers can query but not mutate.
	if resp := s.handle(mustJSON(t, request{Op: "query", Doc: mustDoc(t, profile.PDAService()), Token: "tb"})); !resp.OK || len(resp.Hits) != 1 {
		t.Fatalf("reader query: %+v", resp)
	}
	if resp := s.handle(mustJSON(t, request{Op: "deregister", Name: "alice/ws", Token: "tb"})); resp.OK || resp.Code != tenant.CodeForbidden {
		t.Fatalf("reader deregister: %+v", resp)
	}
	if resp := s.handle(mustJSON(t, request{Op: "add-ontology", Doc: "x", Token: "tb"})); resp.OK || resp.Code != tenant.CodeForbidden {
		t.Fatalf("reader ontology upload: %+v", resp)
	}

	// The admission table is admin-only and reflects the bookkeeping.
	if resp := s.handle(mustJSON(t, request{Op: "tenants", Token: "ta"})); resp.OK || resp.Code != tenant.CodeForbidden {
		t.Fatalf("publisher read /tenants: %+v", resp)
	}
	resp = s.handle(mustJSON(t, request{Op: "tenants", Token: "tr"}))
	if !resp.OK || resp.Tenants == nil || !resp.Tenants.Enforcing || resp.Tenants.Auth != "static" {
		t.Fatalf("admin tenants: %+v", resp)
	}
	var alice *tenant.Status
	for i := range resp.Tenants.Tenants {
		if resp.Tenants.Tenants[i].Tenant == "alice" {
			alice = &resp.Tenants.Tenants[i]
		}
	}
	// Three denials charged to alice: the un-namespaced publish, the
	// cross-tenant publish, and the forbidden /tenants probe just above.
	if alice == nil || alice.LiveServices != 1 || alice.PublishesTotal != 1 || alice.DeniedTotal != 3 {
		t.Fatalf("alice status = %+v", alice)
	}

	// Deregister under the owner frees the live slot.
	if resp := s.handle(mustJSON(t, request{Op: "deregister", Name: "alice/ws", Token: "ta"})); !resp.OK {
		t.Fatalf("owner deregister: %+v", resp)
	}
	resp = s.handle(mustJSON(t, request{Op: "tenants", Token: "tr"}))
	for _, row := range resp.Tenants.Tenants {
		if row.Tenant == "alice" && row.LiveServices != 0 {
			t.Fatalf("live count after withdraw = %d", row.LiveServices)
		}
	}
}

func TestAdmissionHMACAndAnonymousReads(t *testing.T) {
	secret := []byte("0123456789abcdef")
	h, err := tenant.NewHMAC(secret, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := enforcingServer(t, tenant.Config{Auth: h, AnonymousReads: true})

	// Token-less reads are served as the anonymous tenant...
	if resp := s.handle(mustJSON(t, request{Op: "stats"})); !resp.OK {
		t.Fatalf("anonymous stats: %+v", resp)
	}
	// ...but token-less mutations are still refused.
	if resp := s.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/ws")})); resp.OK || resp.Code != tenant.CodeForbidden {
		t.Fatalf("anonymous publish: %+v", resp)
	}

	// A minted token publishes into its own namespace.
	tok, err := tenant.MintToken(secret, "alice", tenant.RolePublisher, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp := s.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/ws"), Token: tok})); !resp.OK {
		t.Fatalf("minted-token publish: %+v", resp)
	}
}

// TestAdmissionRateLimit drives one tenant through its token bucket and
// minute quota, checking the 429 code surfaces on the wire.
func TestAdmissionRateLimit(t *testing.T) {
	// A near-zero refill rate keeps the bucket from topping back up
	// between requests: only the burst is spendable during the test.
	s := enforcingServer(t, tenant.Config{Rate: 1e-9, Burst: 3})
	for i := 0; i < 3; i++ {
		if resp := s.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/ws"), Token: "ta"})); !resp.OK {
			t.Fatalf("burst publish %d: %+v", i, resp)
		}
	}
	resp := s.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/ws"), Token: "ta"}))
	if resp.OK || resp.Code != tenant.CodeRateLimited {
		t.Fatalf("drained bucket: %+v", resp)
	}
	// The denial did not supersede the advertisement: still version 3.
	s.mu.Lock()
	ver := s.adverts["alice/ws"].current()
	s.mu.Unlock()
	if ver != 3 {
		t.Fatalf("rate-limited publish bumped the version to %d", ver)
	}
}

// TestAdmissionQuotaDurable proves per-tenant live counts survive a
// daemon restart: a replayed store rebuilds them, so the max-live quota
// binds immediately instead of resetting to zero.
func TestAdmissionQuotaDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.jsonl")
	cfg := func() tenant.Config {
		static, err := tenant.ParseStatic(strings.NewReader("ta alice\n"))
		if err != nil {
			t.Fatal(err)
		}
		return tenant.Config{Auth: static, MaxLiveServices: 2}
	}

	st := openTestStore(t, "jsonl", path)
	s1 := enforcingServer(t, cfg())
	s1.store = st
	for _, name := range []string{"alice/a", "alice/b"} {
		if resp := s1.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, name), Token: "ta"})); !resp.OK {
			t.Fatalf("register %s: %+v", name, resp)
		}
	}
	if resp := s1.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/c"), Token: "ta"})); resp.OK || resp.Code != tenant.CodeRateLimited {
		t.Fatalf("over-quota publish: %+v", resp)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the gate must exist before replay, exactly like main().
	st2 := openTestStore(t, "auto", path)
	s2 := newTestServer(t)
	s2.gate = tenant.NewGatekeeper(cfg())
	if _, _, _, err := replayStore(st2, s2); err != nil {
		t.Fatal(err)
	}
	s2.store = st2
	resp := s2.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/c"), Token: "ta"}))
	if resp.OK || resp.Code != tenant.CodeRateLimited {
		t.Fatalf("quota not rebuilt by replay: %+v", resp)
	}
	// Withdrawing a replayed service frees a durable slot.
	if resp := s2.handle(mustJSON(t, request{Op: "deregister", Name: "alice/a", Token: "ta"})); !resp.OK {
		t.Fatalf("deregister after replay: %+v", resp)
	}
	if resp := s2.handle(mustJSON(t, request{Op: "register", Doc: namedDoc(t, "alice/c"), Token: "ta"})); !resp.OK {
		t.Fatalf("register into freed slot: %+v", resp)
	}
}

// TestAdmissionHTTP walks the gateway: bearer headers in, 401/403/429
// statuses out, the admission table on GET /tenants, and the tenant_*
// metric families on /metrics.
func TestAdmissionHTTP(t *testing.T) {
	s := enforcingServer(t, tenant.Config{Rate: 1e-9, Burst: 2})
	ts := httptest.NewServer(newHTTPGateway(s, false))
	t.Cleanup(ts.Close)

	authed := func(method, url, body, token string) (*http.Response, string) {
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(payload)
	}

	// 401 without a credential — on mutations and on the direct-read
	// endpoints alike.
	if resp, _ := authed("POST", ts.URL+"/services", namedDoc(t, "alice/ws"), ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless POST /services = %d", resp.StatusCode)
	}
	if resp, _ := authed("GET", ts.URL+"/services", "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless GET /services = %d", resp.StatusCode)
	}
	// 403 outside the namespace.
	if resp, _ := authed("POST", ts.URL+"/services", namedDoc(t, "bob/ws"), "ta"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant POST = %d", resp.StatusCode)
	}
	// Admitted publishes, then 429 when the bucket drains.
	for i := 0; i < 2; i++ {
		if resp, body := authed("POST", ts.URL+"/services", namedDoc(t, "alice/ws"), "ta"); resp.StatusCode != http.StatusCreated {
			t.Fatalf("publish %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	if resp, _ := authed("POST", ts.URL+"/services", namedDoc(t, "alice/ws"), "ta"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket = %d", resp.StatusCode)
	}

	// GET /tenants: 403 for a publisher, the full table for an admin.
	if resp, _ := authed("GET", ts.URL+"/tenants", "", "ta"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("publisher GET /tenants = %d", resp.StatusCode)
	}
	resp, body := authed("GET", ts.URL+"/tenants", "", "tr")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin GET /tenants = %d: %s", resp.StatusCode, body)
	}
	var table response
	if err := json.Unmarshal([]byte(body), &table); err != nil {
		t.Fatal(err)
	}
	if table.Tenants == nil || !table.Tenants.Enforcing || len(table.Tenants.Tenants) == 0 {
		t.Fatalf("tenants body = %s", body)
	}

	// The labeled families and the 429 counter are on /metrics.
	resp, metrics := authed("GET", ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		`tenant_live_services{tenant="alice"} 1`,
		"tenant_rate_limited_total",
		"tenant_denied_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// An authenticated read pages the listing normally.
	if resp, body := authed("GET", ts.URL+"/services", "", "tb"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "alice/ws") {
		t.Fatalf("reader GET /services = %d: %s", resp.StatusCode, body)
	}
}
