package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// journal persists the directory's registration history so a restarted
// sdpd recovers its advertisements: an append-only file of JSON lines,
// one per mutation. Ontology uploads are journaled too, since encoded
// tables must exist before advertisements can be replayed.
type journal struct {
	f *os.File
}

// journalEntry is one persisted mutation.
type journalEntry struct {
	Op   string `json:"op"`             // "register", "deregister", "add-ontology"
	Doc  string `json:"doc,omitempty"`  // XML document for register/add-ontology
	Name string `json:"name,omitempty"` // service name for deregister
}

// openJournal opens (creating if needed) the journal for appending.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one entry durably.
func (j *journal) append(e journalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return j.f.Sync()
}

// healthy reports whether the journal file is still usable — a closed or
// deleted-out-from-under handle fails the daemon's store probe.
func (j *journal) healthy() error {
	if _, err := j.f.Stat(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// close releases the file.
func (j *journal) close() error { return j.f.Close() }

// replayJournal feeds every journaled mutation back into the server. A
// missing file is an empty history. Corrupt trailing lines (torn writes)
// stop the replay without failing startup; corrupt middle lines are
// skipped with a count so the operator can tell.
func replayJournal(path string, s *server) (applied, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	// Replay happens before the front ends start, but applyLocked's
	// contract is that the caller holds the server mutex, so hold it.
	s.mu.Lock()
	defer s.mu.Unlock()
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			skipped++
			continue
		}
		if resp := s.applyLocked(e); !resp.OK {
			skipped++
			continue
		}
		applied++
	}
	if err := scanner.Err(); err != nil && err != io.EOF {
		return applied, skipped, fmt.Errorf("journal: %w", err)
	}
	return applied, skipped, nil
}

// applyLocked executes a journal entry against the directory without
// re-journaling it.
func (s *server) applyLocked(e journalEntry) response {
	switch e.Op {
	case "register":
		if _, err := s.backend.Register([]byte(e.Doc)); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "deregister":
		if !s.backend.Deregister(e.Name) {
			return response{Error: "not registered"}
		}
		return response{OK: true}
	case "add-ontology":
		if err := s.addOntologyTextLocked(e.Doc); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	default:
		return response{Error: "unknown journal op " + e.Op}
	}
}
