// Command sdpgen writes an evaluation corpus to disk: the ontologies,
// Amigo-S service advertisements, semantic request documents and WSDL
// twins of a generated workload (the paper's setup: 22 ontologies, one
// provided capability per service). The files feed cmd/sdpd / cmd/sdpctl
// demos and external tooling.
//
// Usage:
//
//	sdpgen -out corpus -services 100 -ontologies 22 -requests 10 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sariadne/internal/gen"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/wsdl"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "corpus", "output directory")
	services := flag.Int("services", 100, "number of services")
	ontologies := flag.Int("ontologies", 22, "number of ontologies")
	classes := flag.Int("classes", 40, "classes per ontology")
	inputs := flag.Int("inputs", 5, "inputs per capability")
	outputs := flag.Int("outputs", 3, "outputs per capability")
	requests := flag.Int("requests", 10, "number of request documents")
	depth := flag.Int("depth", 1, "request specialization depth")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	if err := run(*out, gen.WorkloadConfig{
		Ontologies:           *ontologies,
		ClassesPerOntology:   *classes,
		Services:             *services,
		InputsPerCapability:  *inputs,
		OutputsPerCapability: *outputs,
		Seed:                 *seed,
	}, *requests, *depth); err != nil {
		log.Fatalf("sdpgen: %v", err)
	}
}

func run(out string, cfg gen.WorkloadConfig, requests, depth int) error {
	w, err := gen.NewWorkload(cfg)
	if err != nil {
		return err
	}
	for _, sub := range []string{"ontologies", "services", "wsdl", "requests"} {
		if err := os.MkdirAll(filepath.Join(out, sub), 0o755); err != nil {
			return err
		}
	}

	for i, o := range w.Ontologies {
		data, err := ontology.Marshal(o)
		if err != nil {
			return err
		}
		if err := write(out, "ontologies", fmt.Sprintf("ont%02d.xml", i), data); err != nil {
			return err
		}
	}
	for i, doc := range w.ServiceDocs {
		if err := write(out, "services", fmt.Sprintf("svc%04d.xml", i), doc); err != nil {
			return err
		}
	}
	for i, def := range w.Definitions {
		data, err := wsdl.Marshal(def)
		if err != nil {
			return err
		}
		if err := write(out, "wsdl", fmt.Sprintf("svc%04d.xml", i), data); err != nil {
			return err
		}
	}
	if requests > len(w.Services) {
		requests = len(w.Services)
	}
	for i := 0; i < requests; i++ {
		idx := i * len(w.Services) / max(requests, 1)
		req := &profile.Service{
			Name:     fmt.Sprintf("request%02d", i),
			Required: []*profile.Capability{w.Request(idx, depth)},
		}
		data, err := profile.Marshal(req)
		if err != nil {
			return err
		}
		if err := write(out, "requests", fmt.Sprintf("req%02d.xml", i), data); err != nil {
			return err
		}
	}
	log.Printf("sdpgen: wrote %d ontologies, %d services (+WSDL twins), %d requests under %s",
		len(w.Ontologies), len(w.Services), requests, out)
	return nil
}

func write(out, sub, name string, data []byte) error {
	return os.WriteFile(filepath.Join(out, sub, name), data, 0o644)
}
