package main

import (
	"os"
	"path/filepath"
	"testing"

	"sariadne/internal/gen"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/wsdl"
)

func TestRunWritesCorpus(t *testing.T) {
	out := t.TempDir()
	cfg := gen.WorkloadConfig{
		Ontologies: 3,
		Services:   8,
		Seed:       7,
	}
	if err := run(out, cfg, 4, 1); err != nil {
		t.Fatal(err)
	}

	count := func(sub string) int {
		entries, err := os.ReadDir(filepath.Join(out, sub))
		if err != nil {
			t.Fatal(err)
		}
		return len(entries)
	}
	if got := count("ontologies"); got != 3 {
		t.Errorf("ontologies = %d", got)
	}
	if got := count("services"); got != 8 {
		t.Errorf("services = %d", got)
	}
	if got := count("wsdl"); got != 8 {
		t.Errorf("wsdl = %d", got)
	}
	if got := count("requests"); got != 4 {
		t.Errorf("requests = %d", got)
	}

	// Every written file must parse back.
	for _, f := range []struct {
		sub   string
		parse func([]byte) error
	}{
		{"ontologies", func(b []byte) error { _, err := ontology.Unmarshal(b); return err }},
		{"services", func(b []byte) error { _, err := profile.Unmarshal(b); return err }},
		{"wsdl", func(b []byte) error { _, err := wsdl.Unmarshal(b); return err }},
		{"requests", func(b []byte) error { _, err := profile.Unmarshal(b); return err }},
	} {
		entries, err := os.ReadDir(filepath.Join(out, f.sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(out, f.sub, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := f.parse(data); err != nil {
				t.Errorf("%s/%s does not parse: %v", f.sub, e.Name(), err)
			}
		}
	}
}

func TestRunMoreRequestsThanServices(t *testing.T) {
	out := t.TempDir()
	if err := run(out, gen.WorkloadConfig{Ontologies: 2, Services: 2, Seed: 1}, 10, 0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(out, "requests"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("requests = %d, want clamped to 2", len(entries))
	}
}
