// Command slocheck is the SLO comparator CLI: it diffs a load run's
// BENCH_load_<scenario>.json against a checked-in baseline under
// configurable tolerance bands and exits non-zero on regression. CI runs
// it after every short seeded sdpload run (`make slo-check`), so a PR
// that blows the p99 band or collapses throughput fails before merge.
//
//	slocheck -baseline bench/baselines/BENCH_load_flash-crowd.json \
//	         -run BENCH_load_flash-crowd.json \
//	         -tolerance bench/baselines/tolerances.json
//
// Exit status: 0 = within bands, 1 = violations, 2 = usage/IO error.
package main

import (
	"flag"
	"fmt"
	"os"

	"sariadne/internal/slo"
)

func main() {
	var basePath, runPath, tolPath string
	flag.StringVar(&basePath, "baseline", "", "baseline report path (required)")
	flag.StringVar(&runPath, "run", "", "candidate run report path (required)")
	flag.StringVar(&tolPath, "tolerance", "", "tolerance bands JSON (empty = defaults)")
	flag.Parse()

	if basePath == "" || runPath == "" {
		fmt.Fprintln(os.Stderr, "slocheck: -baseline and -run are required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := slo.LoadReport(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slocheck: %v\n", err)
		os.Exit(2)
	}
	run, err := slo.LoadReport(runPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slocheck: %v\n", err)
		os.Exit(2)
	}
	var tol slo.Tolerance
	if tolPath != "" {
		tol, err = slo.LoadTolerance(tolPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slocheck: %v\n", err)
			os.Exit(2)
		}
	}

	violations := slo.Compare(base, run, tol)
	if len(violations) == 0 {
		fmt.Printf("slocheck: %s within tolerance of %s\n", runPath, basePath)
		return
	}
	fmt.Fprintf(os.Stderr, "slocheck: %s regressed against %s:\n", runPath, basePath)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	os.Exit(1)
}
