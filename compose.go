package sariadne

import (
	"sariadne/internal/compose"
	"sariadne/internal/process"
)

// Composition re-exports: Amigo-S services declare both provided and
// required capabilities so that composition schemes can be built on
// discovery (paper Section 2.2); ResolveComposition implements the
// centrally coordinated scheme over a local directory.

type (
	// CompositionPlan is a resolved binding tree: one selected
	// advertisement per requirement, recursively.
	CompositionPlan = compose.Plan
	// CompositionBinding pairs a requirement with its selected provider.
	CompositionBinding = compose.Binding
	// CompositionOptions tunes resolution depth and cycle handling.
	CompositionOptions = compose.Options
	// ServiceCatalog supplies full service descriptions for recursive
	// resolution.
	ServiceCatalog = compose.Catalog
)

// Composition errors, re-exported for errors.Is.
var (
	ErrUnresolvable     = compose.ErrUnresolvable
	ErrCompositionCycle = compose.ErrCycle
	ErrDepthExceeded    = compose.ErrDepthExceeded
)

// ResolveComposition builds a composition plan for svc: every required
// capability is resolved against the directory (best semantic distance
// wins) and, when opts.Resolver knows the selected providers' own
// descriptions, their requirements are resolved recursively.
func (d *Directory) ResolveComposition(svc *Service, opts CompositionOptions) (*CompositionPlan, error) {
	return compose.Resolve(d.dir, svc, opts)
}

// Process-model re-exports (the OWL-S conversation side of Amigo-S).
type (
	// ProcessNode is one vertex of a service's conversation tree.
	ProcessNode = process.Node
	// ConversationStep is one interaction of an executed conversation.
	ConversationStep = process.Step
)

// Process constructors.
var (
	InvokeStep      = process.Invoke
	SequenceProcess = process.Sequence
	ParallelProcess = process.Parallel
	ChoiceProcess   = process.Choice
)

// Conversation executes the service's process model against a composition
// plan's bindings, yielding the interaction trace.
func Conversation(svc *Service, plan *CompositionPlan) ([]ConversationStep, error) {
	return compose.Conversation(svc, plan)
}

// NewServiceCatalog builds a catalog from service descriptions.
func NewServiceCatalog(services ...*Service) ServiceCatalog {
	cat := ServiceCatalog{}
	for _, s := range services {
		cat[s.Name] = s
	}
	return cat
}
