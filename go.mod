module sariadne

go 1.24
