// Benchmarks reproducing the paper's evaluation (one per measured figure)
// plus the ablations DESIGN.md calls for. cmd/benchfig generates the
// corresponding figure data series; EXPERIMENTS.md records paper-vs-
// measured shapes.
package sariadne_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"sariadne/internal/ariadne"
	"sariadne/internal/bloom"
	"sariadne/internal/codes"
	"sariadne/internal/compose"
	"sariadne/internal/discovery"
	"sariadne/internal/election"
	"sariadne/internal/gen"
	"sariadne/internal/gist"
	"sariadne/internal/match"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/reasoner"
	"sariadne/internal/registry"
	"sariadne/internal/simnet"
	"sariadne/internal/testutil"
	"sariadne/internal/wsdl"
)

// ---------------------------------------------------------------------------
// Figure 2 — cost of matching one capability pair with online reasoners
// (stand-ins for Racer / FaCT++ / Pellet), decomposed into parse,
// load+classify, and match phases; plus the encoded matcher for contrast.
// Paper: 4–5 s per match, load+classify 76–78% of the total.
// ---------------------------------------------------------------------------

// fig2Fixtures returns the serialized ontology document and the two
// serialized capability-description documents of the Figure 2 setup.
func fig2Fixtures(b *testing.B) (ontDoc, providedDoc, requestedDoc []byte) {
	b.Helper()
	ontDoc, err := ontology.Marshal(gen.Fig2Ontology())
	if err != nil {
		b.Fatal(err)
	}
	provided, requested := gen.Fig2Capabilities()
	providedDoc, err = profile.Marshal(&profile.Service{Name: "provided", Provided: []*profile.Capability{provided}})
	if err != nil {
		b.Fatal(err)
	}
	requestedDoc, err = profile.Marshal(&profile.Service{Name: "requested", Required: []*profile.Capability{requested}})
	if err != nil {
		b.Fatal(err)
	}
	return ontDoc, providedDoc, requestedDoc
}

// BenchmarkFig2OnlineReasoners decomposes one matchmaking episode into the
// paper's three tasks (Section 2.4): (1) parsing the requested and
// provided capability descriptions, (2) loading and classifying the
// ontology with the reasoner — ontology-document processing included, as
// real reasoners ingest RDF/XML — and (3) finding the subsumption
// relationships (the match proper).
func BenchmarkFig2OnlineReasoners(b *testing.B) {
	ontDoc, providedDoc, requestedDoc := fig2Fixtures(b)

	for _, prof := range reasoner.Profiles() {
		b.Run(prof, func(b *testing.B) {
			b.Run("parse", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := profile.Unmarshal(providedDoc); err != nil {
						b.Fatal(err)
					}
					if _, err := profile.Unmarshal(requestedDoc); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("loadclassify", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, _ := reasoner.New(prof)
					if err := r.Load(bytes.NewReader(ontDoc)); err != nil {
						b.Fatal(err)
					}
					if _, err := r.Classify(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("match", func(b *testing.B) {
				provided, requested := gen.Fig2Capabilities()
				r, _ := reasoner.New(prof)
				if err := r.Load(bytes.NewReader(ontDoc)); err != nil {
					b.Fatal(err)
				}
				h, err := r.Classify()
				if err != nil {
					b.Fatal(err)
				}
				m := match.NewHierarchyMatcher()
				m.Add(gen.Fig2Ontology().URI, h)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !match.Match(m, provided, requested) {
						b.Fatal("pair must match")
					}
				}
			})
			// total: the full online pipeline per matchmaking episode,
			// exactly what Figure 2's bars show.
			b.Run("total", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ps, err := profile.Unmarshal(providedDoc)
					if err != nil {
						b.Fatal(err)
					}
					rs, err := profile.Unmarshal(requestedDoc)
					if err != nil {
						b.Fatal(err)
					}
					r, _ := reasoner.New(prof)
					if err := r.Load(bytes.NewReader(ontDoc)); err != nil {
						b.Fatal(err)
					}
					h, err := r.Classify()
					if err != nil {
						b.Fatal(err)
					}
					m := match.NewHierarchyMatcher()
					m.Add(gen.Fig2Ontology().URI, h)
					if !match.Match(m, ps.Provided[0], rs.Required[0]) {
						b.Fatal("pair must match")
					}
				}
			})
		})
	}
}

// BenchmarkFig2EncodedMatching is the paper's optimization applied to the
// same pair: codes are prepared offline, runtime matching is numeric.
func BenchmarkFig2EncodedMatching(b *testing.B) {
	o := gen.Fig2Ontology()
	provided, requested := gen.Fig2Capabilities()
	reg := codes.NewRegistry()
	reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	m := match.NewCodeMatcher(reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !match.Match(m, provided, requested) {
			b.Fatal("pair must match")
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 7–9 share the paper's workload: 22 ontologies, one provided
// capability per service, directory sizes 1..100.
// ---------------------------------------------------------------------------

var figSizes = []int{20, 60, 100}

func evalWorkload(b *testing.B, services int) (*gen.Workload, *codes.Registry) {
	b.Helper()
	w := gen.MustNewWorkload(gen.WorkloadConfig{
		Ontologies:           22,
		Services:             services,
		InputsPerCapability:  5,
		OutputsPerCapability: 3,
		Seed:                 42,
	})
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		b.Fatal(err)
	}
	return w, reg
}

// BenchmarkFig7CreateGraphs measures populating an empty directory with n
// advertisements: the parse phase vs the graph-classification phase.
func BenchmarkFig7CreateGraphs(b *testing.B) {
	for _, n := range figSizes {
		w, reg := evalWorkload(b, n)
		b.Run(fmt.Sprintf("services=%d/parse", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, doc := range w.ServiceDocs {
					if _, err := ontologyFreeParse(doc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("services=%d/create", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := registry.NewDirectory(match.NewCodeMatcher(reg))
				b.StartTimer()
				for _, svc := range w.Services {
					if err := dir.Register(svc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("services=%d/total", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := registry.NewDirectory(match.NewCodeMatcher(reg))
				b.StartTimer()
				for _, doc := range w.ServiceDocs {
					svc, err := ontologyFreeParse(doc)
					if err != nil {
						b.Fatal(err)
					}
					if err := dir.Register(svc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig8Insert measures publishing one additional advertisement
// into an already-populated directory (parse vs insert); the paper finds
// the insert phase near-constant in directory size.
func BenchmarkFig8Insert(b *testing.B) {
	for _, n := range figSizes {
		w, reg := evalWorkload(b, n+1)
		newDoc := w.ServiceDocs[n]
		b.Run(fmt.Sprintf("services=%d/parse", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ontologyFreeParse(newDoc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("services=%d/insert", n), func(b *testing.B) {
			dir := registry.NewDirectory(match.NewCodeMatcher(reg))
			for _, svc := range w.Services[:n] {
				if err := dir.Register(svc); err != nil {
					b.Fatal(err)
				}
			}
			base, err := ontologyFreeParse(newDoc)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh service name each iteration: measures classifying a
				// genuinely new advertisement (replacement has a different
				// cost profile).
				svc := base.Clone()
				svc.Name = fmt.Sprintf("new%d", i)
				if err := dir.Register(svc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Match compares resolving a request in the classified
// directory (optimized) against unclassified linear matching, request
// parse time excluded as in the paper.
func BenchmarkFig9Match(b *testing.B) {
	for _, n := range figSizes {
		w, reg := evalWorkload(b, n)
		m := match.NewCodeMatcher(reg)
		req := w.Request(n/2, 1)

		b.Run(fmt.Sprintf("services=%d/optimized", n), func(b *testing.B) {
			dir := registry.NewDirectory(m)
			for _, svc := range w.Services {
				if err := dir.Register(svc); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := dir.Query(req); len(res) == 0 {
					b.Fatal("request must match")
				}
			}
		})
		b.Run(fmt.Sprintf("services=%d/linear", n), func(b *testing.B) {
			dir := registry.NewLinearDirectory(m)
			for _, svc := range w.Services {
				if err := dir.Register(svc); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := dir.Query(req); len(res) == 0 {
					b.Fatal("request must match")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 10 — Ariadne (syntactic WSDL scan) vs S-Ariadne (semantic,
// classified + encoded) directory response time, same services, document
// in / answer out on both sides.
// ---------------------------------------------------------------------------

func BenchmarkFig10AriadneVsSAriadne(b *testing.B) {
	for _, n := range figSizes {
		w, reg := evalWorkload(b, n)

		b.Run(fmt.Sprintf("services=%d/ariadne", n), func(b *testing.B) {
			backend := ariadne.NewBackend()
			for _, def := range w.Definitions {
				doc, err := wsdl.Marshal(def)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := backend.Register(doc); err != nil {
					b.Fatal(err)
				}
			}
			reqDoc, err := wsdl.Marshal(w.WSDLRequest(n / 2))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, err := backend.Query(reqDoc)
				if err != nil || len(hits) == 0 {
					b.Fatalf("hits=%v err=%v", hits, err)
				}
			}
		})
		b.Run(fmt.Sprintf("services=%d/s-ariadne", n), func(b *testing.B) {
			backend := discovery.NewSemanticBackend(reg)
			for _, doc := range w.ServiceDocs {
				if _, err := backend.Register(doc); err != nil {
					b.Fatal(err)
				}
			}
			reqDoc := semanticRequestDoc(b, w, n/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, err := backend.Query(reqDoc)
				if err != nil || len(hits) == 0 {
					b.Fatalf("hits=%v err=%v", hits, err)
				}
			}
		})
	}
}

// semanticRequestDoc builds the Amigo-S request document derived from a
// stored service (guaranteed to match it).
func semanticRequestDoc(b *testing.B, w *gen.Workload, idx int) []byte {
	b.Helper()
	req := &profile.Service{
		Name:     "request",
		Required: []*profile.Capability{w.Request(idx, 1)},
	}
	doc, err := profile.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	return doc
}

// ontologyFreeParse parses an Amigo-S document (the parse phase of the
// publication experiments).
func ontologyFreeParse(doc []byte) (*profile.Service, error) {
	return profile.Unmarshal(doc)
}

// ---------------------------------------------------------------------------
// Section 2.4 reference point — UDDI-style syntactic registry query.
// ---------------------------------------------------------------------------

func BenchmarkUDDISyntacticRegistry(b *testing.B) {
	w, _ := evalWorkload(b, 100)
	reg := wsdl.NewRegistry()
	for _, def := range w.Definitions {
		if err := reg.Publish(def); err != nil {
			b.Fatal(err)
		}
	}
	req := w.WSDLRequest(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := reg.Query(req); len(got) == 0 {
			b.Fatal("no hit")
		}
	}
}

// ---------------------------------------------------------------------------
// Section 3.1 shape — GiST-style rectangle directory: queries cheap,
// insertions comparatively heavy (tree splits).
// ---------------------------------------------------------------------------

func BenchmarkGiSTDirectoryInsert(b *testing.B) {
	w, reg := evalWorkload(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := gist.NewDirectory(reg)
		b.StartTimer()
		for _, svc := range w.Services {
			if err := dir.Register(svc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGiSTDirectoryQuery(b *testing.B) {
	w, reg := evalWorkload(b, 100)
	dir := gist.NewDirectory(reg)
	for _, svc := range w.Services {
		if err := dir.Register(svc); err != nil {
			b.Fatal(err)
		}
	}
	req := w.Request(50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := dir.Query(req); len(res) == 0 {
			b.Fatal("no hit")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation — the same query workload against the three directory
// backends: the paper's capability DAG, the GiST rectangles, and a flat
// linear scan.
// ---------------------------------------------------------------------------

func BenchmarkAblationDirectoryBackends(b *testing.B) {
	w, reg := evalWorkload(b, 100)
	m := match.NewCodeMatcher(reg)
	req := w.Request(50, 1)

	dag := registry.NewDirectory(m)
	rect := gist.NewDirectory(reg)
	flat := registry.NewLinearDirectory(m)
	for _, svc := range w.Services {
		if err := dag.Register(svc); err != nil {
			b.Fatal(err)
		}
		if err := rect.Register(svc); err != nil {
			b.Fatal(err)
		}
		if err := flat.Register(svc); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("dag", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := dag.Query(req); len(res) == 0 {
				b.Fatal("no hit")
			}
		}
	})
	b.Run("gist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := rect.Query(req); len(res) == 0 {
				b.Fatal("no hit")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := flat.Query(req); len(res) == 0 {
				b.Fatal("no hit")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation — reasoner-backed vs encoded concept matching on one pair.
// ---------------------------------------------------------------------------

func BenchmarkAblationMatcherBackends(b *testing.B) {
	o := gen.Fig2Ontology()
	provided, requested := gen.Fig2Capabilities()

	b.Run("hierarchy", func(b *testing.B) {
		r := reasoner.NewNaive()
		if err := r.LoadOntology(o); err != nil {
			b.Fatal(err)
		}
		h, err := r.Classify()
		if err != nil {
			b.Fatal(err)
		}
		m := match.NewHierarchyMatcher()
		m.Add(o.URI, h)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !match.Match(m, provided, requested) {
				b.Fatal("must match")
			}
		}
	})
	b.Run("codes", func(b *testing.B) {
		reg := codes.NewRegistry()
		reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
		m := match.NewCodeMatcher(reg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !match.Match(m, provided, requested) {
				b.Fatal("must match")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Section 4 — Bloom summary operations and offline encoding cost.
// ---------------------------------------------------------------------------

func BenchmarkBloomFilter(b *testing.B) {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://amigo.example/gen/ont%02d\x00http://amigo.example/gen/ont%02d", i%22, (i+7)%22)
	}
	b.Run("add", func(b *testing.B) {
		f := bloom.MustNew(1024, 4)
		for i := 0; i < b.N; i++ {
			f.Add(keys[i%len(keys)])
		}
	})
	b.Run("test", func(b *testing.B) {
		f := bloom.MustNew(1024, 4)
		for _, k := range keys {
			f.Add(k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Test(keys[i%len(keys)])
		}
	})
}

// BenchmarkEncodeOntology is the offline step the paper moves out of the
// critical path: classification plus interval encoding of the Figure 2
// ontology.
func BenchmarkEncodeOntology(b *testing.B) {
	o := gen.Fig2Ontology()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := ontology.Classify(o)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codes.Encode(cl, codes.DefaultParams); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXMLParsing isolates the document-parsing cost that dominates
// Figures 7 and 8.
func BenchmarkXMLParsing(b *testing.B) {
	w, _ := evalWorkload(b, 10)
	b.Run("amigos-service", func(b *testing.B) {
		doc := w.ServiceDocs[0]
		for i := 0; i < b.N; i++ {
			if _, err := profile.Unmarshal(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ontology", func(b *testing.B) {
		doc, err := ontology.Marshal(w.Ontologies[0])
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		buf.Write(doc)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ontology.Unmarshal(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Extension benches — composition resolution and full protocol round trip.
// ---------------------------------------------------------------------------

// BenchmarkComposeResolve measures recursive composition over a directory:
// a 5-deep requirement chain resolved end to end.
func BenchmarkComposeResolve(b *testing.B) {
	reg := codes.NewRegistry()
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	}
	dir := registry.NewDirectory(match.NewCodeMatcher(reg))
	cats := []string{"Server", "DigitalServer", "StreamingServer", "VideoServer", "SoundServer", "GameServer"}
	cat := compose.Catalog{}
	var root *profile.Service
	for i := 0; i < len(cats); i++ {
		s := &profile.Service{Name: cats[i] + "Svc"}
		s.Provided = []*profile.Capability{{
			Name:     "Provide" + cats[i],
			Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: cats[i]},
			Outputs:  []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
		}}
		if i+1 < len(cats) {
			s.Required = []*profile.Capability{{
				Name:     "Need" + cats[i+1],
				Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: cats[i+1]},
				Outputs:  []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
			}}
		}
		cat[s.Name] = s
		if i == 0 {
			root = s
		} else if err := dir.Register(s); err != nil {
			b.Fatal(err)
		}
	}
	opts := compose.Options{Resolver: cat}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := compose.Resolve(dir, root, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Services()) != len(cats) {
			b.Fatalf("plan covers %d services", len(plan.Services()))
		}
	}
}

// BenchmarkProtocolRoundTrip measures one full Discover over the simulated
// network: client -> directory -> classified local match -> reply.
func BenchmarkProtocolRoundTrip(b *testing.B) {
	reg := codes.NewRegistry()
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	}
	net := simnet.New(simnet.Config{})
	defer net.Close()
	eps, err := simnet.BuildLine(net, "n", 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := discovery.Config{
		QueryTimeout: time.Second,
		TickInterval: 2 * time.Millisecond,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      3,
			ElectionTimeout:   time.Hour,
		},
	}
	nodes := make([]*discovery.Node, len(eps))
	for i, ep := range eps {
		nodes[i] = discovery.NewNode(ep, discovery.NewSemanticBackend(reg), cfg)
		nodes[i].Start(context.Background())
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	nodes[1].BecomeDirectory()
	testutil.WaitFor(b, 5*time.Second, func() bool {
		_, ok := nodes[0].DirectoryID()
		return ok
	}, "directory advertisement")
	ctx := context.Background()
	doc, err := profile.Marshal(profile.WorkstationService())
	if err != nil {
		b.Fatal(err)
	}
	if err := nodes[0].Publish(ctx, doc); err != nil {
		b.Fatal(err)
	}
	reqDoc, err := profile.Marshal(profile.PDAService())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := nodes[2].Discover(ctx, reqDoc)
		if err != nil || len(hits) != 1 {
			b.Fatalf("hits=%v err=%v", hits, err)
		}
	}
}
