package sariadne

import (
	"errors"
	"testing"

	"sariadne/internal/profile"
)

func TestResolveCompositionFacade(t *testing.T) {
	sys := newFixtureSystem(t)
	dir := sys.NewDirectory()

	workstation := &Service{
		Name: "Workstation",
		Provided: []*Capability{{
			Name:     "SendDigitalStream",
			Category: Ref{Ontology: profile.ServersOntologyURI, Name: "DigitalServer"},
			Outputs:  []Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
		}},
		Required: []*Capability{{
			Name:     "NeedStorage",
			Category: Ref{Ontology: profile.ServersOntologyURI, Name: "Server"},
			Outputs:  []Ref{{Ontology: profile.MediaOntologyURI, Name: "DigitalResource"}},
		}},
	}
	nas := &Service{
		Name: "NAS",
		Provided: []*Capability{{
			Name:     "ServeFiles",
			Category: Ref{Ontology: profile.ServersOntologyURI, Name: "Server"},
			Outputs:  []Ref{{Ontology: profile.MediaOntologyURI, Name: "Resource"}},
		}},
	}
	for _, s := range []*Service{workstation, nas} {
		if err := dir.Register(s); err != nil {
			t.Fatal(err)
		}
	}

	task := &Service{
		Name: "WatchSomething",
		Required: []*Capability{{
			Name:     "NeedStream",
			Category: Ref{Ontology: profile.ServersOntologyURI, Name: "DigitalServer"},
			Outputs:  []Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
		}},
	}
	plan, err := dir.ResolveComposition(task, CompositionOptions{
		Resolver: NewServiceCatalog(workstation, nas),
	})
	if err != nil {
		t.Fatalf("ResolveComposition: %v", err)
	}
	services := plan.Services()
	if len(services) != 3 {
		t.Fatalf("Services = %v", services)
	}

	dir.Deregister("NAS")
	_, err = dir.ResolveComposition(task, CompositionOptions{
		Resolver: NewServiceCatalog(workstation, nas),
	})
	if !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("after NAS departure: %v, want ErrUnresolvable", err)
	}
}

func TestQoSFacade(t *testing.T) {
	sys := newFixtureSystem(t)
	dir := sys.NewDirectory()
	svc := &Service{
		Name: "FastServer",
		Provided: []*Capability{{
			Name:        "Stream",
			Category:    Ref{Ontology: profile.ServersOntologyURI, Name: "VideoServer"},
			Outputs:     []Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
			QoSProvided: []QoSValue{{Name: "latencyMs", Value: 12}},
		}},
	}
	if err := dir.Register(svc); err != nil {
		t.Fatal(err)
	}
	req := &Capability{
		Name:     "Need",
		Category: Ref{Ontology: profile.ServersOntologyURI, Name: "VideoServer"},
		Outputs:  []Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
		QoSRequired: []QoSConstraint{
			{Name: "latencyMs", Min: UnboundedQoS(), Max: 20},
		},
	}
	if results := dir.Query(req); len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	req.QoSRequired[0].Max = 5
	if results := dir.Query(req); len(results) != 0 {
		t.Fatalf("tight QoS results = %v", results)
	}
}
